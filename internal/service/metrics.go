package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"boosting"
	"boosting/internal/artifact"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// compilePassNames lists every pass the /v1/compile endpoint runs, in
// pipeline order. The metrics registry pre-seeds these so the
// boostd_compile_pass_seconds exposition is complete from startup.
var compilePassNames = []string{
	"parse", "regalloc", "reference-run", "profile",
	"trace-select", "ddg-build", "list-schedule", "recovery-emit", "schedule",
}

// passTotals accumulates one pass's compile time across requests.
type passTotals struct {
	seconds float64
	count   int64
}

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both the sub-millisecond cache-hit path and multi-second grid
// sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket latency histogram with Prometheus
// cumulative-bucket semantics.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds; +Inf implicit
	counts []int64   // per-bucket (non-cumulative) counts; len(bounds)+1
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.mu.Lock()
	h.counts[i]++
	h.sum += seconds
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (le order), the sum and the
// total count.
func (h *histogram) snapshot() (cum []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// endpointMetrics tracks one HTTP endpoint.
type endpointMetrics struct {
	latency  *histogram
	mu       sync.Mutex
	byCode   map[int]int64
	rejected atomic.Int64
}

func (e *endpointMetrics) record(code int, seconds float64) {
	e.latency.Observe(seconds)
	e.mu.Lock()
	e.byCode[code]++
	e.mu.Unlock()
}

// metricsRegistry is the daemon's hand-rolled Prometheus registry: a
// fixed endpoint set with latency histograms and per-status counters,
// plus live gauges (queue depth, in-flight) and cache counters read from
// the admission queue and memo stores at scrape time. The exposition
// format is the Prometheus text format, version 0.0.4.
type metricsRegistry struct {
	order     []string
	endpoints map[string]*endpointMetrics
	panics    atomic.Int64

	// engines counts machine-simulator executions by engine name. Keys
	// are pre-seeded with every known engine so the exposition always
	// lists both counters, even at zero.
	engineMu sync.Mutex
	engines  map[string]int64

	// compilePasses accumulates per-pass compile seconds from /v1/compile
	// requests, pre-seeded with every known pass name. Cached responses do
	// not re-record: the metric counts compiles that actually ran.
	passMu        sync.Mutex
	compilePasses map[string]passTotals

	// mem accumulates memory-hierarchy counters across every simulation
	// that ran with a mem block. Cached responses do not re-record.
	memMu   sync.Mutex
	memRuns int64
	mem     memhier.Stats

	// Gauges and cache counters are sampled at scrape time.
	queueDepth    func() int64
	inFlight      func() int64
	respCache     func() (hits, misses int64)
	pipeCache     func() (hits, misses int64)
	artifactStats func() artifact.CacheStats
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	m := &metricsRegistry{
		order:         append([]string(nil), endpoints...),
		endpoints:     make(map[string]*endpointMetrics, len(endpoints)),
		engines:       map[string]int64{},
		compilePasses: map[string]passTotals{},
		queueDepth:    func() int64 { return 0 },
		inFlight:      func() int64 { return 0 },
		respCache:     func() (int64, int64) { return 0, 0 },
		pipeCache:     func() (int64, int64) { return 0, 0 },
		artifactStats: func() artifact.CacheStats { return artifact.CacheStats{} },
	}
	for _, e := range sim.Engines() {
		m.engines[e.String()] = 0
	}
	for _, p := range compilePassNames {
		m.compilePasses[p] = passTotals{}
	}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{
			latency: newHistogram(latencyBuckets),
			byCode:  map[int]int64{},
		}
	}
	return m
}

func (m *metricsRegistry) endpoint(path string) *endpointMetrics { return m.endpoints[path] }

// recordEngine counts one machine-simulator execution on the named engine.
func (m *metricsRegistry) recordEngine(name string) {
	m.engineMu.Lock()
	m.engines[name]++
	m.engineMu.Unlock()
}

// recordCompilePasses folds one compile's per-pass report into the
// cumulative boostd_compile_pass_seconds totals.
func (m *metricsRegistry) recordCompilePasses(cs *boosting.CompileStats) {
	if cs == nil {
		return
	}
	m.passMu.Lock()
	for _, row := range cs.Passes {
		t := m.compilePasses[row.Name]
		t.seconds += row.Seconds
		t.count++
		m.compilePasses[row.Name] = t
	}
	m.passMu.Unlock()
}

// recordMem folds one simulation's memory-hierarchy counters into the
// cumulative boostd_mem_* totals. Perfect-memory runs (nil stats) are
// not counted.
func (m *metricsRegistry) recordMem(s *memhier.Stats) {
	if s == nil {
		return
	}
	m.memMu.Lock()
	m.memRuns++
	m.mem.Accesses += s.Accesses
	m.mem.L1Misses += s.L1Misses
	m.mem.L2Misses += s.L2Misses
	m.mem.MSHRMerges += s.MSHRMerges
	m.mem.MSHRFullStalls += s.MSHRFullStalls
	m.mem.WriteBufferStalls += s.WriteBufferStalls
	m.mem.StallCycles += s.StallCycles
	m.mem.PrefIssued += s.PrefIssued
	m.mem.PrefUseful += s.PrefUseful
	m.memMu.Unlock()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Output is deterministic: endpoints in registration order,
// status codes sorted ascending.
func (m *metricsRegistry) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP boostd_request_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE boostd_request_seconds histogram\n")
	for _, ep := range m.order {
		cum, sum, total := m.endpoints[ep].latency.snapshot()
		for i, bound := range latencyBuckets {
			fmt.Fprintf(w, "boostd_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(bound), cum[i])
		}
		fmt.Fprintf(w, "boostd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum[len(cum)-1])
		fmt.Fprintf(w, "boostd_request_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(sum))
		fmt.Fprintf(w, "boostd_request_seconds_count{endpoint=%q} %d\n", ep, total)
	}

	fmt.Fprintf(w, "# HELP boostd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE boostd_requests_total counter\n")
	for _, ep := range m.order {
		e := m.endpoints[ep]
		e.mu.Lock()
		codes := make([]int, 0, len(e.byCode))
		for c := range e.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "boostd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.byCode[c])
		}
		e.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP boostd_rejected_total Requests rejected with 429 by a full admission queue.\n")
	fmt.Fprintf(w, "# TYPE boostd_rejected_total counter\n")
	for _, ep := range m.order {
		fmt.Fprintf(w, "boostd_rejected_total{endpoint=%q} %d\n", ep, m.endpoints[ep].rejected.Load())
	}

	fmt.Fprintf(w, "# HELP boostd_queue_depth Requests waiting for an execution slot.\n")
	fmt.Fprintf(w, "# TYPE boostd_queue_depth gauge\n")
	fmt.Fprintf(w, "boostd_queue_depth %d\n", m.queueDepth())

	fmt.Fprintf(w, "# HELP boostd_in_flight Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE boostd_in_flight gauge\n")
	fmt.Fprintf(w, "boostd_in_flight %d\n", m.inFlight())

	rh, rm := m.respCache()
	fmt.Fprintf(w, "# HELP boostd_cache_hits_total Responses served from the deduplicating result cache.\n")
	fmt.Fprintf(w, "# TYPE boostd_cache_hits_total counter\n")
	fmt.Fprintf(w, "boostd_cache_hits_total %d\n", rh)
	fmt.Fprintf(w, "# HELP boostd_cache_misses_total Responses that ran the pipeline.\n")
	fmt.Fprintf(w, "# TYPE boostd_cache_misses_total counter\n")
	fmt.Fprintf(w, "boostd_cache_misses_total %d\n", rm)

	ph, pm := m.pipeCache()
	fmt.Fprintf(w, "# HELP boostd_pipeline_cache_hits_total Pipeline artifact-cache hits (compiled workloads, scalar baselines).\n")
	fmt.Fprintf(w, "# TYPE boostd_pipeline_cache_hits_total counter\n")
	fmt.Fprintf(w, "boostd_pipeline_cache_hits_total %d\n", ph)
	fmt.Fprintf(w, "# HELP boostd_pipeline_cache_misses_total Pipeline artifact-cache misses.\n")
	fmt.Fprintf(w, "# TYPE boostd_pipeline_cache_misses_total counter\n")
	fmt.Fprintf(w, "boostd_pipeline_cache_misses_total %d\n", pm)

	as := m.artifactStats()
	fmt.Fprintf(w, "# HELP boostd_artifact_disk_hits_total Compiles served from the on-disk artifact store.\n")
	fmt.Fprintf(w, "# TYPE boostd_artifact_disk_hits_total counter\n")
	fmt.Fprintf(w, "boostd_artifact_disk_hits_total %d\n", as.DiskHits)
	fmt.Fprintf(w, "# HELP boostd_artifact_peer_hits_total Compiles served by fetching an artifact from a peer daemon.\n")
	fmt.Fprintf(w, "# TYPE boostd_artifact_peer_hits_total counter\n")
	fmt.Fprintf(w, "boostd_artifact_peer_hits_total %d\n", as.PeerHits)
	fmt.Fprintf(w, "# HELP boostd_artifact_misses_total Artifact-cache lookups that fell through to a local compile.\n")
	fmt.Fprintf(w, "# TYPE boostd_artifact_misses_total counter\n")
	fmt.Fprintf(w, "boostd_artifact_misses_total %d\n", as.Misses)
	fmt.Fprintf(w, "# HELP boostd_artifact_persisted_total Artifacts durably written to the disk store.\n")
	fmt.Fprintf(w, "# TYPE boostd_artifact_persisted_total counter\n")
	fmt.Fprintf(w, "boostd_artifact_persisted_total %d\n", as.Persisted)

	fmt.Fprintf(w, "# HELP boostd_engine_requests_total Machine-simulator executions, by simulator engine.\n")
	fmt.Fprintf(w, "# TYPE boostd_engine_requests_total counter\n")
	m.engineMu.Lock()
	engines := make([]string, 0, len(m.engines))
	for e := range m.engines {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Fprintf(w, "boostd_engine_requests_total{engine=%q} %d\n", e, m.engines[e])
	}
	m.engineMu.Unlock()

	fmt.Fprintf(w, "# HELP boostd_compile_pass_seconds Compile time by pass across /v1/compile requests (cached responses excluded).\n")
	fmt.Fprintf(w, "# TYPE boostd_compile_pass_seconds summary\n")
	m.passMu.Lock()
	names := make([]string, 0, len(m.compilePasses))
	for n := range m.compilePasses {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := m.compilePasses[n]
		fmt.Fprintf(w, "boostd_compile_pass_seconds_sum{pass=%q} %s\n", n, formatFloat(t.seconds))
		fmt.Fprintf(w, "boostd_compile_pass_seconds_count{pass=%q} %d\n", n, t.count)
	}
	m.passMu.Unlock()

	m.memMu.Lock()
	memRuns, mem := m.memRuns, m.mem
	m.memMu.Unlock()
	fmt.Fprintf(w, "# HELP boostd_mem_runs_total Simulations executed under a finite memory hierarchy (cached responses excluded).\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_runs_total counter\n")
	fmt.Fprintf(w, "boostd_mem_runs_total %d\n", memRuns)
	fmt.Fprintf(w, "# HELP boostd_mem_accesses_total Demand memory accesses simulated under a hierarchy.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_accesses_total counter\n")
	fmt.Fprintf(w, "boostd_mem_accesses_total %d\n", mem.Accesses)
	fmt.Fprintf(w, "# HELP boostd_mem_misses_total Cache misses by level.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_misses_total counter\n")
	fmt.Fprintf(w, "boostd_mem_misses_total{level=\"l1\"} %d\n", mem.L1Misses)
	fmt.Fprintf(w, "boostd_mem_misses_total{level=\"l2\"} %d\n", mem.L2Misses)
	fmt.Fprintf(w, "# HELP boostd_mem_stall_cycles_total Stall cycles charged by the memory hierarchy.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_stall_cycles_total counter\n")
	fmt.Fprintf(w, "boostd_mem_stall_cycles_total %d\n", mem.StallCycles)
	fmt.Fprintf(w, "# HELP boostd_mem_mshr_merges_total Demand misses merged into an in-flight fill.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_mshr_merges_total counter\n")
	fmt.Fprintf(w, "boostd_mem_mshr_merges_total %d\n", mem.MSHRMerges)
	fmt.Fprintf(w, "# HELP boostd_mem_structural_stall_cycles_total Cycles lost to full MSHRs or a full write buffer.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_structural_stall_cycles_total counter\n")
	fmt.Fprintf(w, "boostd_mem_structural_stall_cycles_total{resource=\"mshr\"} %d\n", mem.MSHRFullStalls)
	fmt.Fprintf(w, "boostd_mem_structural_stall_cycles_total{resource=\"write_buffer\"} %d\n", mem.WriteBufferStalls)
	fmt.Fprintf(w, "# HELP boostd_mem_prefetches_total Prefetch fills, total issued and the useful subset.\n")
	fmt.Fprintf(w, "# TYPE boostd_mem_prefetches_total counter\n")
	fmt.Fprintf(w, "boostd_mem_prefetches_total{kind=\"issued\"} %d\n", mem.PrefIssued)
	fmt.Fprintf(w, "boostd_mem_prefetches_total{kind=\"useful\"} %d\n", mem.PrefUseful)

	fmt.Fprintf(w, "# HELP boostd_panics_total Request handlers recovered from a panic.\n")
	fmt.Fprintf(w, "# TYPE boostd_panics_total counter\n")
	fmt.Fprintf(w, "boostd_panics_total %d\n", m.panics.Load())
}
