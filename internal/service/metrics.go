package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"boosting/internal/sim"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both the sub-millisecond cache-hit path and multi-second grid
// sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket latency histogram with Prometheus
// cumulative-bucket semantics.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds; +Inf implicit
	counts []int64   // per-bucket (non-cumulative) counts; len(bounds)+1
	sum    float64
	total  int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.mu.Lock()
	h.counts[i]++
	h.sum += seconds
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (le order), the sum and the
// total count.
func (h *histogram) snapshot() (cum []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// endpointMetrics tracks one HTTP endpoint.
type endpointMetrics struct {
	latency  *histogram
	mu       sync.Mutex
	byCode   map[int]int64
	rejected atomic.Int64
}

func (e *endpointMetrics) record(code int, seconds float64) {
	e.latency.Observe(seconds)
	e.mu.Lock()
	e.byCode[code]++
	e.mu.Unlock()
}

// metricsRegistry is the daemon's hand-rolled Prometheus registry: a
// fixed endpoint set with latency histograms and per-status counters,
// plus live gauges (queue depth, in-flight) and cache counters read from
// the admission queue and memo stores at scrape time. The exposition
// format is the Prometheus text format, version 0.0.4.
type metricsRegistry struct {
	order     []string
	endpoints map[string]*endpointMetrics
	panics    atomic.Int64

	// engines counts machine-simulator executions by engine name. Keys
	// are pre-seeded with every known engine so the exposition always
	// lists both counters, even at zero.
	engineMu sync.Mutex
	engines  map[string]int64

	// Gauges and cache counters are sampled at scrape time.
	queueDepth func() int64
	inFlight   func() int64
	respCache  func() (hits, misses int64)
	pipeCache  func() (hits, misses int64)
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	m := &metricsRegistry{
		order:      append([]string(nil), endpoints...),
		endpoints:  make(map[string]*endpointMetrics, len(endpoints)),
		engines:    map[string]int64{},
		queueDepth: func() int64 { return 0 },
		inFlight:   func() int64 { return 0 },
		respCache:  func() (int64, int64) { return 0, 0 },
		pipeCache:  func() (int64, int64) { return 0, 0 },
	}
	for _, e := range sim.Engines() {
		m.engines[e.String()] = 0
	}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{
			latency: newHistogram(latencyBuckets),
			byCode:  map[int]int64{},
		}
	}
	return m
}

func (m *metricsRegistry) endpoint(path string) *endpointMetrics { return m.endpoints[path] }

// recordEngine counts one machine-simulator execution on the named engine.
func (m *metricsRegistry) recordEngine(name string) {
	m.engineMu.Lock()
	m.engines[name]++
	m.engineMu.Unlock()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Output is deterministic: endpoints in registration order,
// status codes sorted ascending.
func (m *metricsRegistry) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP boostd_request_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE boostd_request_seconds histogram\n")
	for _, ep := range m.order {
		cum, sum, total := m.endpoints[ep].latency.snapshot()
		for i, bound := range latencyBuckets {
			fmt.Fprintf(w, "boostd_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, formatFloat(bound), cum[i])
		}
		fmt.Fprintf(w, "boostd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum[len(cum)-1])
		fmt.Fprintf(w, "boostd_request_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(sum))
		fmt.Fprintf(w, "boostd_request_seconds_count{endpoint=%q} %d\n", ep, total)
	}

	fmt.Fprintf(w, "# HELP boostd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE boostd_requests_total counter\n")
	for _, ep := range m.order {
		e := m.endpoints[ep]
		e.mu.Lock()
		codes := make([]int, 0, len(e.byCode))
		for c := range e.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "boostd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.byCode[c])
		}
		e.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP boostd_rejected_total Requests rejected with 429 by a full admission queue.\n")
	fmt.Fprintf(w, "# TYPE boostd_rejected_total counter\n")
	for _, ep := range m.order {
		fmt.Fprintf(w, "boostd_rejected_total{endpoint=%q} %d\n", ep, m.endpoints[ep].rejected.Load())
	}

	fmt.Fprintf(w, "# HELP boostd_queue_depth Requests waiting for an execution slot.\n")
	fmt.Fprintf(w, "# TYPE boostd_queue_depth gauge\n")
	fmt.Fprintf(w, "boostd_queue_depth %d\n", m.queueDepth())

	fmt.Fprintf(w, "# HELP boostd_in_flight Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE boostd_in_flight gauge\n")
	fmt.Fprintf(w, "boostd_in_flight %d\n", m.inFlight())

	rh, rm := m.respCache()
	fmt.Fprintf(w, "# HELP boostd_cache_hits_total Responses served from the deduplicating result cache.\n")
	fmt.Fprintf(w, "# TYPE boostd_cache_hits_total counter\n")
	fmt.Fprintf(w, "boostd_cache_hits_total %d\n", rh)
	fmt.Fprintf(w, "# HELP boostd_cache_misses_total Responses that ran the pipeline.\n")
	fmt.Fprintf(w, "# TYPE boostd_cache_misses_total counter\n")
	fmt.Fprintf(w, "boostd_cache_misses_total %d\n", rm)

	ph, pm := m.pipeCache()
	fmt.Fprintf(w, "# HELP boostd_pipeline_cache_hits_total Pipeline artifact-cache hits (compiled workloads, scalar baselines).\n")
	fmt.Fprintf(w, "# TYPE boostd_pipeline_cache_hits_total counter\n")
	fmt.Fprintf(w, "boostd_pipeline_cache_hits_total %d\n", ph)
	fmt.Fprintf(w, "# HELP boostd_pipeline_cache_misses_total Pipeline artifact-cache misses.\n")
	fmt.Fprintf(w, "# TYPE boostd_pipeline_cache_misses_total counter\n")
	fmt.Fprintf(w, "boostd_pipeline_cache_misses_total %d\n", pm)

	fmt.Fprintf(w, "# HELP boostd_engine_requests_total Machine-simulator executions, by simulator engine.\n")
	fmt.Fprintf(w, "# TYPE boostd_engine_requests_total counter\n")
	m.engineMu.Lock()
	engines := make([]string, 0, len(m.engines))
	for e := range m.engines {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		fmt.Fprintf(w, "boostd_engine_requests_total{engine=%q} %d\n", e, m.engines[e])
	}
	m.engineMu.Unlock()

	fmt.Fprintf(w, "# HELP boostd_panics_total Request handlers recovered from a panic.\n")
	fmt.Fprintf(w, "# TYPE boostd_panics_total counter\n")
	fmt.Fprintf(w, "boostd_panics_total %d\n", m.panics.Load())
}
