package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestSimulateAsmWithMem exercises the mem block on the assembly path:
// the hierarchy slows the run without changing what it computes, the
// response carries the hierarchy counters, and the mem block is part of
// the response-cache key (the perfect-memory result must not be served
// for the finite-memory request or vice versa).
func TestSimulateAsmWithMem(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	asm, _ := json.Marshal(testAsm(77))

	resp, b := post(t, ts, "/v1/simulate",
		fmt.Sprintf(`{"asm": %s, "model": "MinBoost3"}`, asm))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perfect-memory simulate = %d: %s", resp.StatusCode, b)
	}
	var perfect SimulateResponse
	if err := json.Unmarshal(b, &perfect); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if perfect.Mem != nil {
		t.Errorf("perfect-memory response carries a mem block: %+v", perfect.Mem)
	}

	// A tiny direct-mapped single-level cache so the toy program misses.
	memBlock := `"mem": {"l1_sets": 4, "l1_ways": 1, "l1_line_bytes": 8, "l2_sets": -1, "mem_latency": 20}`
	resp, b = post(t, ts, "/v1/simulate",
		fmt.Sprintf(`{"asm": %s, "model": "MinBoost3", %s}`, asm, memBlock))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mem simulate = %d: %s", resp.StatusCode, b)
	}
	var hier SimulateResponse
	if err := json.Unmarshal(b, &hier); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if hier.Mem == nil || hier.Mem.Accesses == 0 || hier.Mem.L1Misses == 0 {
		t.Fatalf("mem response has no hierarchy counters: %s", b)
	}
	if hier.Cycles <= perfect.Cycles {
		t.Errorf("hierarchy run %d cycles, want > perfect %d", hier.Cycles, perfect.Cycles)
	}
	if hier.Cycles != perfect.Cycles+hier.Mem.MemStalls {
		t.Errorf("cycles %d != perfect %d + stalls %d",
			hier.Cycles, perfect.Cycles, hier.Mem.MemStalls)
	}
	if hier.Insts != perfect.Insts || hier.OutLen != perfect.OutLen {
		t.Errorf("architectural results changed under the hierarchy: %+v vs %+v", hier, perfect)
	}
	if hier.ScalarCycles <= perfect.ScalarCycles {
		t.Errorf("scalar baseline %d not re-measured under the hierarchy (perfect %d)",
			hier.ScalarCycles, perfect.ScalarCycles)
	}

	// The dynamic baseline honors the same block.
	resp, b = post(t, ts, "/v1/simulate",
		fmt.Sprintf(`{"asm": %s, "dynamic": true, %s}`, asm, memBlock))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dynamic mem simulate = %d: %s", resp.StatusCode, b)
	}
	var dyn SimulateResponse
	if err := json.Unmarshal(b, &dyn); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if dyn.Mem == nil || dyn.Mem.MemStalls == 0 {
		t.Errorf("dynamic mem response has no hierarchy counters: %s", b)
	}

	// The metrics endpoint saw the finite-memory runs (boosted run,
	// scalar baselines, dynamic run — at least three).
	_, mb := get(t, ts, "/metrics")
	for _, want := range []string{
		"boostd_mem_runs_total",
		"boostd_mem_accesses_total",
		`boostd_mem_misses_total{level="l1"}`,
		"boostd_mem_stall_cycles_total",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(string(mb), "boostd_mem_runs_total 0\n") {
		t.Errorf("boostd_mem_runs_total still zero after finite-memory simulations")
	}
}

// TestSimulateWorkloadWithMem exercises the mem block on the workload
// path, where the shared pipeline re-measures the scalar baseline under
// the hierarchy so speedup stays like-for-like.
func TestSimulateWorkloadWithMem(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation in -short mode")
	}
	_, ts := newTestServer(t, Config{})

	resp, b := post(t, ts, "/v1/simulate",
		`{"workload": "grep", "model": "MinBoost3", "mem": {"l1_sets": 64, "l1_ways": 1, "l1_line_bytes": 16}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workload mem simulate = %d: %s", resp.StatusCode, b)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if sr.Mem == nil || sr.Mem.L1Misses == 0 || sr.Mem.MemStalls == 0 {
		t.Fatalf("workload mem response has no hierarchy activity: %s", b)
	}
	if sr.Speedup <= 1 {
		t.Errorf("boosting under the hierarchy lost to scalar: %+v", sr)
	}
}

// TestMemRequestValidation: a mem block that resolves to an invalid
// configuration is rejected up front with a 400 naming the field.
func TestMemRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ name, block string }{
		{"non-power-of-two sets", `{"l1_sets": 3}`},
		{"bad policy", `{"l1_policy": "plru"}`},
		{"bad prefetcher", `{"prefetch": "markov"}`},
	} {
		body := fmt.Sprintf(`{"asm": %q, "model": "MinBoost3", "mem": %s}`, "halt", tc.block)
		resp, b := post(t, ts, "/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, b)
		}
	}
}

// TestGridWithMem: the grid sweep accepts a mem block and every cell
// runs under it (visible as cycle counts above the perfect-memory
// sweep's).
func TestGridWithMem(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	_, ts := newTestServer(t, Config{})
	base := `{"workloads": ["grep"], "models": ["MinBoost3"], "ablations": ["baseline"]`

	resp, b := post(t, ts, "/v1/grid", base+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid = %d: %s", resp.StatusCode, b)
	}
	var perfect GridResponse
	if err := json.Unmarshal(b, &perfect); err != nil {
		t.Fatalf("decoding: %v", err)
	}

	resp, b = post(t, ts, "/v1/grid",
		base+`, "mem": {"l1_sets": 64, "l1_ways": 1, "l1_line_bytes": 16}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mem grid = %d: %s", resp.StatusCode, b)
	}
	var hier GridResponse
	if err := json.Unmarshal(b, &hier); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(hier.Rows) != 1 || hier.Rows[0].Error != "" {
		t.Fatalf("bad mem grid rows: %s", b)
	}
	if hier.Rows[0].Cycles <= perfect.Rows[0].Cycles {
		t.Errorf("mem grid cell %d cycles, want > perfect %d",
			hier.Rows[0].Cycles, perfect.Rows[0].Cycles)
	}
}

// TestGridMemSweep: mem_sweep fans each cell out over several memory
// hierarchies as one batched execution, one row per (cell, hierarchy),
// and each row matches what the equivalent single-mem grid reports.
func TestGridMemSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep in -short mode")
	}
	_, ts := newTestServer(t, Config{})
	base := `{"workloads": ["grep"], "models": ["MinBoost3"], "ablations": ["baseline"]`
	small := `{"l1_sets": 64, "l1_ways": 1, "l1_line_bytes": 16}`
	stride := `{"l1_sets": 64, "l1_ways": 1, "l1_line_bytes": 16, "prefetch": "stride"}`

	resp, b := post(t, ts, "/v1/grid",
		base+`, "mem_sweep": [`+small+`, `+stride+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mem_sweep grid = %d: %s", resp.StatusCode, b)
	}
	var sweep GridResponse
	if err := json.Unmarshal(b, &sweep); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if sweep.Cells != 2 || len(sweep.Rows) != 2 {
		t.Fatalf("want 2 rows (1 cell × 2 hierarchies), got: %s", b)
	}
	for i, row := range sweep.Rows {
		if row.Error != "" {
			t.Fatalf("row %d failed: %s", i, row.Error)
		}
		if row.Mem == "" {
			t.Errorf("row %d has no mem label: %s", i, b)
		}
	}
	if sweep.Rows[0].Mem == sweep.Rows[1].Mem {
		t.Errorf("sweep rows share a mem label: %s", b)
	}

	// Each lane must report exactly what a solo single-mem grid does.
	for i, block := range []string{small, stride} {
		resp, b := post(t, ts, "/v1/grid", base+`, "mem": `+block+`}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solo mem grid = %d: %s", resp.StatusCode, b)
		}
		var solo GridResponse
		if err := json.Unmarshal(b, &solo); err != nil {
			t.Fatalf("decoding: %v", err)
		}
		if solo.Rows[0].Cycles != sweep.Rows[i].Cycles ||
			solo.Rows[0].Speedup != sweep.Rows[i].Speedup {
			t.Errorf("lane %d diverges from solo grid: sweep %+v solo %+v",
				i, sweep.Rows[i], solo.Rows[0])
		}
	}

	// mem and mem_sweep together are rejected up front.
	resp, b = post(t, ts, "/v1/grid",
		base+`, "mem": `+small+`, "mem_sweep": [`+stride+`]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mem+mem_sweep = %d, want 400: %s", resp.StatusCode, b)
	}
}
