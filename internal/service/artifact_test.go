package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"boosting"
)

func simWorkloadBody(t *testing.T, workload, model string) string {
	t.Helper()
	b, err := json.Marshal(SimulateRequest{Workload: workload, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTwoNodePeerFetch is the headline peer-fetch scenario: node A
// compiles a workload, node B — configured with A as a peer and an empty
// disk store — serves the same request by fetching A's artifact,
// running zero local schedule passes.
func TestTwoNodePeerFetch(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a real workload")
	}
	body := simWorkloadBody(t, boosting.WorkloadGrep, "MinBoost3")

	nodeA, tsA := newTestServer(t, Config{ArtifactDir: t.TempDir()})
	respA, bA := post(t, tsA, "/v1/simulate", body)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("node A simulate = %d: %s", respA.StatusCode, bA)
	}
	if got := respA.Header.Get("X-Boostd-Artifact"); got != "compile" {
		t.Errorf("node A artifact header = %q, want compile", got)
	}
	if n := nodeA.Pipeline().SchedulePasses(); n == 0 {
		t.Error("node A reports zero schedule passes after a cold compile")
	}

	nodeB, tsB := newTestServer(t, Config{
		ArtifactDir: t.TempDir(),
		Peers:       []string{tsA.URL},
	})
	respB, bB := post(t, tsB, "/v1/simulate", body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("node B simulate = %d: %s", respB.StatusCode, bB)
	}
	if got := respB.Header.Get("X-Boostd-Artifact"); got != "peer" {
		t.Errorf("node B artifact header = %q, want peer", got)
	}
	if n := nodeB.Pipeline().SchedulePasses(); n != 0 {
		t.Errorf("node B ran %d schedule passes, want 0 (schedule must come from the peer artifact)", n)
	}

	var srA, srB SimulateResponse
	if err := json.Unmarshal(bA, &srA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bB, &srB); err != nil {
		t.Fatal(err)
	}
	if srA.Cycles != srB.Cycles || srA.ScalarCycles != srB.ScalarCycles || srA.OutLen != srB.OutLen {
		t.Errorf("peer-served results differ: A cycles=%d/%d out=%d, B cycles=%d/%d out=%d",
			srA.Cycles, srA.ScalarCycles, srA.OutLen, srB.Cycles, srB.ScalarCycles, srB.OutLen)
	}
}

// TestDiskWarmRestart proves the artifact store survives a daemon
// restart: a second server over the same directory serves the compile
// from disk without a schedule pass.
func TestDiskWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a real workload")
	}
	dir := t.TempDir()
	body := simWorkloadBody(t, boosting.WorkloadGrep, "MinBoost3")

	nodeA, tsA := newTestServer(t, Config{ArtifactDir: dir})
	if resp, b := post(t, tsA, "/v1/simulate", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first simulate = %d: %s", resp.StatusCode, b)
	}
	persisted, err := nodeA.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if persisted == 0 {
		t.Fatal("no artifacts persisted by the first daemon")
	}

	nodeB, tsB := newTestServer(t, Config{ArtifactDir: dir})
	resp, b := post(t, tsB, "/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm simulate = %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Boostd-Artifact"); got != "disk" {
		t.Errorf("warm artifact header = %q, want disk", got)
	}
	if n := nodeB.Pipeline().SchedulePasses(); n != 0 {
		t.Errorf("warm start ran %d schedule passes, want 0", n)
	}
}

func TestArtifactEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a real workload")
	}
	s, ts := newTestServer(t, Config{ArtifactDir: t.TempDir()})
	if resp, b := post(t, ts, "/v1/simulate", simWorkloadBody(t, boosting.WorkloadGrep, "MinBoost3")); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate = %d: %s", resp.StatusCode, b)
	}
	_ = s

	key := url.PathEscape(fmt.Sprintf("compile|%s|alloc=true", boosting.WorkloadGrep))
	resp, b := get(t, ts, "/v1/artifact/"+key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type = %q", ct)
	}
	a, err := boosting.DecodeArtifact(b)
	if err != nil {
		t.Fatalf("served artifact does not decode: %v", err)
	}
	if a.Workload != boosting.WorkloadGrep {
		t.Errorf("artifact workload = %q", a.Workload)
	}

	if resp, _ := get(t, ts, "/v1/artifact/no-such-key"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing key = %d, want 404", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/artifact/"+key, ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST artifact = %d, want 405", resp.StatusCode)
	}
}

func TestArtifactEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := get(t, ts, "/v1/artifact/any")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled store fetch = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(b), "artifact store disabled") {
		t.Errorf("disabled store body = %s", b)
	}
}

// TestSchemaVersionOnEveryResponse asserts the versioned wire contract:
// every /v1 JSON body — success or error — carries schema_version.
func TestSchemaVersionOnEveryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	assertVersion := func(name string, body []byte) {
		t.Helper()
		var v struct {
			SchemaVersion *int `json:"schema_version"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s: response is not JSON: %v", name, err)
		}
		if v.SchemaVersion == nil || *v.SchemaVersion != SchemaVersion {
			t.Errorf("%s: schema_version = %v, want %d: %s", name, v.SchemaVersion, SchemaVersion, body)
		}
	}

	cb, _ := json.Marshal(CompileRequest{Asm: testAsm(90001), Model: "MinBoost3"})
	if resp, b := post(t, ts, "/v1/compile", string(cb)); resp.StatusCode == http.StatusOK {
		assertVersion("compile", b)
	} else {
		t.Fatalf("compile = %d: %s", resp.StatusCode, b)
	}
	if resp, b := post(t, ts, "/v1/simulate", simBody(90002, "MinBoost3")); resp.StatusCode == http.StatusOK {
		assertVersion("simulate", b)
	} else {
		t.Fatalf("simulate = %d: %s", resp.StatusCode, b)
	}
	if !testing.Short() {
		gb, _ := json.Marshal(GridRequest{
			Workloads: []string{boosting.WorkloadGrep},
			Models:    []string{"MinBoost3"},
			Ablations: []string{"baseline"},
		})
		if resp, b := post(t, ts, "/v1/grid", string(gb)); resp.StatusCode == http.StatusOK {
			assertVersion("grid", b)
		} else {
			t.Fatalf("grid = %d: %s", resp.StatusCode, b)
		}
	}
	if _, b := get(t, ts, "/healthz"); true {
		assertVersion("healthz", b)
	}
	// Error bodies carry it too.
	if resp, b := post(t, ts, "/v1/simulate", `{"model":"MinBoost3"}`); resp.StatusCode == http.StatusBadRequest {
		assertVersion("error", b)
	} else {
		t.Fatalf("invalid simulate = %d, want 400", resp.StatusCode)
	}
}

// TestEngineEnumValidation: options.engine is a typed enum — unknown
// names are rejected at decode time with a 400 naming the valid values.
func TestEngineEnumValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"asm":%q,"model":"MinBoost3","options":{"engine":"turbo"}}`, testAsm(90004))
	resp, b := post(t, ts, "/v1/simulate", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus engine = %d, want 400: %s", resp.StatusCode, b)
	}
	for _, want := range []string{"not a valid engine", `\"fast\"`, `\"legacy\"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("error body missing %q: %s", want, b)
		}
	}
	// The valid names still work.
	for _, engine := range []string{"fast", "legacy"} {
		body := fmt.Sprintf(`{"asm":%q,"model":"MinBoost3","options":{"engine":%q}}`, testAsm(90005), engine)
		if resp, b := post(t, ts, "/v1/simulate", body); resp.StatusCode != http.StatusOK {
			t.Errorf("engine %q = %d: %s", engine, resp.StatusCode, b)
		}
	}
}
