// Golden-trace equivalence suite: every machine model's full execution
// digest — cycle counts, speculation counters, squash events, and the
// committed store stream — is pinned against checked-in golden files under
// testdata/golden/, and the fast pre-decoded core is asserted identical to
// the legacy interpreter on every digest before either is compared to the
// golden copy. Regenerate after an intentional behavior change with
//
//	go test -run TestGoldenTraces -update .
//
// and review the golden-file diff like any other code change: an
// unexplained delta in cycles or squashes is a simulator or scheduler
// regression, not noise.
package boosting_test

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden trace digests")

// goldenDigest summarizes one (workload, model) execution. Streams are
// digested (FNV-64a) so the files stay reviewable while still pinning
// every event byte-for-byte.
type goldenDigest struct {
	Cycles       int64  `json:"cycles"`
	Insts        int64  `json:"insts"`
	BoostedExec  int64  `json:"boostedExec"`
	Squashed     int64  `json:"squashed"`
	Branches     int64  `json:"branches"`
	Correct      int64  `json:"correct"`
	Recoveries   int64  `json:"recoveries"`
	Stalls       int64  `json:"stalls"`
	SquashEvents int    `json:"squashEvents"`
	OutLen       int    `json:"outLen"`
	OutHash      string `json:"outHash"`
	MemHash      string `json:"memHash"`
	StoreCount   int    `json:"storeCount"`
	StoreHash    string `json:"storeHash"`
}

// dynamicDigest summarizes one run of the dynamically-scheduled machine.
type dynamicDigest struct {
	Cycles      int64  `json:"cycles"`
	Insts       int64  `json:"insts"`
	Branches    int64  `json:"branches"`
	Mispredicts int64  `json:"mispredicts"`
	OutLen      int    `json:"outLen"`
	OutHash     string `json:"outHash"`
	MemHash     string `json:"memHash"`
}

// goldenFile is one testdata/golden/<workload>.json document.
type goldenFile struct {
	Workload string                   `json:"workload"`
	Models   map[string]goldenDigest  `json:"models"`
	Dynamic  map[string]dynamicDigest `json:"dynamic"`
}

// goldenModels lists the pinned machine models in the paper's order.
func goldenModels() []struct {
	name  string
	model *machine.Model
} {
	return []struct {
		name  string
		model *machine.Model
	}{
		{"Scalar", machine.Scalar()},
		{"NoBoost", machine.NoBoost()},
		{"Squashing", machine.Squashing()},
		{"Boost1", machine.Boost1()},
		{"MinBoost3", machine.MinBoost3()},
		{"Boost7", machine.Boost7()},
	}
}

// compileGolden runs the full production pipeline on a workload: build
// train/test, register-allocate both, profile on train, transfer
// predictions to test.
func compileGolden(t *testing.T, name string) *prog.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	train, test := w.BuildTrain(), w.BuildTest()
	if _, err := regalloc.Allocate(train); err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.Allocate(test); err != nil {
		t.Fatal(err)
	}
	if err := profile.Annotate(train); err != nil {
		t.Fatal(err)
	}
	if err := profile.Transfer(train, test); err != nil {
		t.Fatal(err)
	}
	return test
}

func hashUint32s(vals []uint32) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// execDigest schedules the program for the model and executes it on the
// chosen engine, digesting every observable stream.
func execDigest(t *testing.T, master *prog.Program, model *machine.Model, engine sim.Engine) goldenDigest {
	t.Helper()
	sp, err := core.Schedule(prog.Clone(master), model, core.Options{LocalOnly: model.IssueWidth == 1})
	if err != nil {
		t.Fatalf("%s: schedule: %v", model.Name, err)
	}
	return schedDigest(t, model.Name, sp, engine)
}

// digestTap captures one execution's store and squash streams so they
// can be digested alongside the counters; wrap() installs its callbacks
// on an ExecConfig, digest() assembles the goldenDigest afterwards.
type digestTap struct {
	storeHash    hash.Hash64
	storeCount   int
	squashEvents int
}

func newDigestTap() *digestTap { return &digestTap{storeHash: fnv.New64a()} }

func (d *digestTap) wrap(cfg sim.ExecConfig) sim.ExecConfig {
	cfg.OnStore = func(addr uint32, size int, val uint32) {
		var buf [12]byte
		binary.LittleEndian.PutUint32(buf[0:], addr)
		binary.LittleEndian.PutUint32(buf[4:], uint32(size))
		binary.LittleEndian.PutUint32(buf[8:], val)
		d.storeHash.Write(buf[:])
		d.storeCount++
	}
	cfg.OnSquash = func(sim.SquashInfo) { d.squashEvents++ }
	return cfg
}

func (d *digestTap) digest(res *sim.ExecResult) goldenDigest {
	return goldenDigest{
		Cycles:       res.Cycles,
		Insts:        res.Insts,
		BoostedExec:  res.BoostedExec,
		Squashed:     res.Squashed,
		Branches:     res.Branches,
		Correct:      res.Correct,
		Recoveries:   res.Recoveries,
		Stalls:       res.Stalls,
		SquashEvents: d.squashEvents,
		OutLen:       len(res.Out),
		OutHash:      hashUint32s(res.Out),
		MemHash:      fmt.Sprintf("%016x", res.MemHash),
		StoreCount:   d.storeCount,
		StoreHash:    fmt.Sprintf("%016x", d.storeHash.Sum64()),
	}
}

// schedDigest executes an already-scheduled program and digests every
// observable stream (also used by the artifact round-trip suite, which
// feeds it schedules decoded from their binary encoding).
func schedDigest(t *testing.T, label string, sp *machine.SchedProgram, engine sim.Engine) goldenDigest {
	t.Helper()
	tap := newDigestTap()
	res, err := sim.Exec(sp, tap.wrap(sim.ExecConfig{Engine: engine}))
	if err != nil {
		t.Fatalf("%s on %s engine: %v", label, engine, err)
	}
	return tap.digest(res)
}

func dynDigest(t *testing.T, master *prog.Program, renaming bool) dynamicDigest {
	t.Helper()
	cfg := dynsched.Default()
	cfg.Renaming = renaming
	res, err := dynsched.Simulate(prog.Clone(master), cfg)
	if err != nil {
		t.Fatalf("dynamic(renaming=%v): %v", renaming, err)
	}
	return dynamicDigest{
		Cycles:      res.Cycles,
		Insts:       res.Insts,
		Branches:    res.Branches,
		Mispredicts: res.Mispredicts,
		OutLen:      len(res.Out),
		OutHash:     hashUint32s(res.Out),
		MemHash:     fmt.Sprintf("%016x", res.MemHash),
	}
}

// TestGoldenTraces pins every model's execution digest against the golden
// files, with the two simulator engines first proven identical on every
// digest. -update rewrites the files from the current implementation.
func TestGoldenTraces(t *testing.T) {
	names := []string{"grep", "eqntott"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			master := compileGolden(t, name)
			got := goldenFile{
				Workload: name,
				Models:   map[string]goldenDigest{},
				Dynamic:  map[string]dynamicDigest{},
			}
			for _, m := range goldenModels() {
				fast := execDigest(t, master, m.model, sim.EngineFast)
				legacy := execDigest(t, master, m.model, sim.EngineLegacy)
				if fast != legacy {
					t.Errorf("%s on %s: engines disagree:\nfast:   %+v\nlegacy: %+v", name, m.name, fast, legacy)
				}
				got.Models[m.name] = fast
			}
			got.Dynamic["base"] = dynDigest(t, master, false)
			got.Dynamic["renaming"] = dynDigest(t, master, true)

			path := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (generate with `go test -run TestGoldenTraces -update .`): %v", path, err)
			}
			var want goldenFile
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for _, m := range goldenModels() {
				w, ok := want.Models[m.name]
				if !ok {
					t.Errorf("%s: golden file lacks model %s; re-run with -update", path, m.name)
					continue
				}
				if g := got.Models[m.name]; g != w {
					t.Errorf("%s on %s: digest drifted from golden (re-run with -update if intended):\ngot:    %+v\ngolden: %+v",
						name, m.name, g, w)
				}
			}
			for _, k := range []string{"base", "renaming"} {
				w, ok := want.Dynamic[k]
				if !ok {
					t.Errorf("%s: golden file lacks dynamic/%s; re-run with -update", path, k)
					continue
				}
				if g := got.Dynamic[k]; g != w {
					t.Errorf("%s dynamic/%s: digest drifted from golden (re-run with -update if intended):\ngot:    %+v\ngolden: %+v",
						name, k, g, w)
				}
			}
		})
	}
}

// TestGoldenBatchLanes: every lane of a lockstep ExecBatch produces
// exactly the digest a solo Exec of the same configuration produces —
// and the solo digests are themselves pinned by TestGoldenTraces, so
// the batch path is chained to the same golden files. Lanes mix
// perfect memory, a finite hierarchy, the legacy engine, and a
// duplicate lane, so the lockstep loop interleaves lanes in genuinely
// different states.
func TestGoldenBatchLanes(t *testing.T) {
	names := []string{"grep", "eqntott"}
	if testing.Short() {
		names = names[:1]
	}
	tiny := memhier.SingleLevel(64, 1, 16, 20)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			master := compileGolden(t, name)
			for _, m := range []*machine.Model{machine.MinBoost3(), machine.Boost7()} {
				sp, err := core.Schedule(prog.Clone(master), m, core.Options{})
				if err != nil {
					t.Fatalf("%s: schedule: %v", m.Name, err)
				}
				laneCfgs := []sim.ExecConfig{
					{},
					{Mem: &tiny},
					{Engine: sim.EngineLegacy},
					{},
				}
				taps := make([]*digestTap, len(laneCfgs))
				batch := make([]sim.ExecConfig, len(laneCfgs))
				for i, c := range laneCfgs {
					taps[i] = newDigestTap()
					batch[i] = taps[i].wrap(c)
				}
				results, errs := sim.ExecBatch(sp, batch)
				for i := range laneCfgs {
					if errs[i] != nil {
						t.Fatalf("%s lane %d: %v", m.Name, i, errs[i])
					}
					soloTap := newDigestTap()
					solo, err := sim.Exec(sp, soloTap.wrap(laneCfgs[i]))
					if err != nil {
						t.Fatalf("%s lane %d solo: %v", m.Name, i, err)
					}
					if got, want := taps[i].digest(results[i]), soloTap.digest(solo); got != want {
						t.Errorf("%s on %s lane %d diverges from solo Exec:\nbatch: %+v\nsolo:  %+v",
							name, m.Name, i, got, want)
					}
					if results[i].MemStalls != solo.MemStalls {
						t.Errorf("%s on %s lane %d: batch mem stalls %d, solo %d",
							name, m.Name, i, results[i].MemStalls, solo.MemStalls)
					}
				}
			}
		})
	}
}
