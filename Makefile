# Convenience targets for the boosting reproduction.

GO ?= go

.PHONY: all test test-short test-race bench experiments fuzz vet clean

all: vet test test-race

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments -all

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=60s ./internal/prog/
	$(GO) test -fuzz=FuzzFormatRoundTrip -fuzztime=30s ./internal/prog/

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
