# Convenience targets for the boosting reproduction.

GO ?= go

# Coverage floors (percent) enforced by `make cover`. Set below current
# coverage so refactors that shed tests fail fast; raise as coverage grows.
COVER_FLOOR_SIM ?= 78
COVER_FLOOR_CORE ?= 90
COVER_FLOOR_DATAFLOW ?= 90
COVER_FLOOR_PASSES ?= 95
COVER_FLOOR_MACHINE ?= 75
COVER_FLOOR_DYNSCHED ?= 85
COVER_FLOOR_WORKLOADS ?= 75
COVER_FLOOR_MEMHIER ?= 90

.PHONY: all test test-short test-race bench bench-json bench-simcore bench-simcore-check bench-compile bench-compile-check bench-artifact bench-memhier bench-memhier-check experiments fuzz fuzz-quick fuzz-smoke cover vet clean

all: vet test test-race fuzz-quick

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json measures boostd's /v1/simulate throughput and latency
# percentiles (hot vs cold response cache) and writes BENCH_service.json.
bench-json:
	BOOSTD_BENCH_JSON=$(CURDIR)/BENCH_service.json $(GO) test -run TestWriteBenchJSON -count=1 ./internal/service/
	@echo "wrote BENCH_service.json"

# bench-simcore measures both simulator engines on the long kernels and
# rewrites the committed BENCH_simcore.json baseline. It fails if the fast
# core has lost its headline properties (>=3x over legacy, allocation-free
# steady state), so a regressed baseline cannot be committed.
bench-simcore:
	SIMCORE_BENCH_JSON=$(CURDIR)/BENCH_simcore.json $(GO) test -run TestWriteSimcoreBenchJSON -count=1 ./internal/sim/
	@echo "wrote BENCH_simcore.json"

# bench-simcore-check re-measures the fast core and fails if it runs >15%
# slower than the committed BENCH_simcore.json baseline. CI runs this.
bench-simcore-check:
	SIMCORE_BENCH_BASELINE=$(CURDIR)/BENCH_simcore.json $(GO) test -run TestSimcoreBenchRegression -count=1 -v ./internal/sim/

# bench-compile measures trace-scheduler compile time (analysis cache on
# vs off) over every workload × {NoBoost, MinBoost3, Boost7} and rewrites
# the committed BENCH_compile.json baseline. It fails if caching does not
# improve aggregate compile time, so a baseline that lost the
# optimization cannot be committed.
bench-compile:
	COMPILE_BENCH_JSON=$(CURDIR)/BENCH_compile.json $(GO) test -run TestWriteCompileBenchJSON -count=1 ./internal/core/
	@echo "wrote BENCH_compile.json"

# bench-compile-check re-measures cached compile time and fails if it runs
# >15% slower than the committed BENCH_compile.json baseline. CI runs this.
bench-compile-check:
	COMPILE_BENCH_BASELINE=$(CURDIR)/BENCH_compile.json $(GO) test -run TestCompileBenchRegression -count=1 -v ./internal/core/

# bench-artifact measures warm-start latency — cold compile vs decoding
# an artifact from the disk store vs fetching it from a boostd peer — and
# rewrites BENCH_artifact.json. It fails if a disk-warm start is not at
# least 5x faster than a cold compile, so a baseline that lost the point
# of the artifact cache cannot be committed.
bench-artifact:
	ARTIFACT_BENCH_JSON=$(CURDIR)/BENCH_artifact.json $(GO) test -run TestWriteArtifactBenchJSON -count=1 .
	@echo "wrote BENCH_artifact.json"

# bench-memhier measures the fast core under the stock and busiest
# memory hierarchies against the perfect-memory run and rewrites the
# committed BENCH_memhier.json baseline. It fails if a hierarchy costs
# more than 4x the perfect-memory run, so a bloated timing model cannot
# be committed.
bench-memhier:
	MEMHIER_BENCH_JSON=$(CURDIR)/BENCH_memhier.json $(GO) test -run TestWriteMemhierBenchJSON -count=1 ./internal/sim/
	@echo "wrote BENCH_memhier.json"

# bench-memhier-check re-measures the hierarchy runs and fails if one is
# >15% slower than the committed BENCH_memhier.json baseline, or if the
# timing model's access/stall counts drifted. CI runs this.
bench-memhier-check:
	MEMHIER_BENCH_BASELINE=$(CURDIR)/BENCH_memhier.json $(GO) test -run TestMemhierBenchRegression -count=1 -v ./internal/sim/

experiments:
	$(GO) run ./cmd/experiments -all

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=60s ./internal/prog/
	$(GO) test -fuzz=FuzzFormatRoundTrip -fuzztime=30s ./internal/prog/
	$(GO) test -fuzz=FuzzRecipeDecode -fuzztime=30s ./internal/difftest/
	$(GO) test -fuzz=FuzzOracle -fuzztime=60s ./internal/difftest/
	$(GO) test -fuzz=FuzzFastCore -fuzztime=60s ./internal/difftest/
	$(GO) test -fuzz=FuzzArtifactDecode -fuzztime=30s ./internal/artifact/

# fuzz-quick is the pre-commit-sized differential campaign: ten seconds
# of random programs plus the reproducer corpus. `make all` runs it; use
# fuzz-smoke for the full minute.
fuzz-quick:
	$(GO) run ./cmd/boostfuzz -duration 10s
	$(GO) run ./cmd/boostfuzz -replay internal/difftest/testdata/corpus

# fuzz-smoke is the CI-sized differential campaign: one minute of random
# programs through every configuration, then a replay of the reproducer
# corpus. Exits nonzero on any divergence.
fuzz-smoke:
	$(GO) run ./cmd/boostfuzz -duration 60s
	$(GO) run ./cmd/boostfuzz -replay internal/difftest/testdata/corpus

# cover enforces statement-coverage floors on the packages the
# differential oracle and golden-trace suite lean on: the simulator, the
# scheduler and its analysis/pass managers, the machine models, the
# dynamic scheduler and the workloads.
cover:
	@set -e; for spec in internal/sim:$(COVER_FLOOR_SIM) internal/core:$(COVER_FLOOR_CORE) \
			internal/dataflow:$(COVER_FLOOR_DATAFLOW) internal/passes:$(COVER_FLOOR_PASSES) \
			internal/machine:$(COVER_FLOOR_MACHINE) internal/dynsched:$(COVER_FLOOR_DYNSCHED) \
			internal/workloads:$(COVER_FLOOR_WORKLOADS) internal/memhier:$(COVER_FLOOR_MEMHIER); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg/ | awk '{for(i=1;i<=NF;i++) if ($$i=="coverage:") {sub(/%/,"",$$(i+1)); print $$(i+1)}}'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p=$$pct -v f=$$floor 'BEGIN{print (p+0 >= f+0) ? 1 : 0}')" != "1" ]; then \
			echo "cover: $$pkg coverage $$pct% fell below the $$floor% floor"; exit 1; \
		fi; \
	done

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
