// Quickstart: compile one workload for every machine model of the paper
// and print the cycle counts and speedups over the scalar R2000 baseline.
//
//	go run ./examples/quickstart [workload]
package main

import (
	"fmt"
	"os"

	"boosting"
	"boosting/internal/machine"
)

func main() {
	workload := boosting.WorkloadGrep
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	ms := boosting.Models()
	configs := []struct {
		name  string
		model *machine.Model
		opts  boosting.Options
	}{
		{"R2000 (scalar)", ms.Scalar, boosting.Options{LocalOnly: true}},
		{"2-issue, basic block", ms.NoBoost, boosting.Options{LocalOnly: true}},
		{"2-issue, global sched", ms.NoBoost, boosting.Options{}},
		{"Squashing", ms.Squashing, boosting.Options{}},
		{"Boost1", ms.Boost1, boosting.Options{}},
		{"MinBoost3", ms.MinBoost3, boosting.Options{}},
		{"Boost7", ms.Boost7, boosting.Options{}},
	}

	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("%-24s %12s %9s %10s %10s\n", "configuration", "cycles", "speedup", "boosted", "squashed")
	for _, c := range configs {
		res, err := boosting.CompileAndRun(workload, c.model, c.opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %12d %8.2fx %10d %10d\n",
			c.name, res.Cycles, res.Speedup, res.BoostedExec, res.Squashed)
	}

	dyn, err := boosting.RunDynamic(workload, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("%-24s %12d %8.2fx %21s\n", "dynamic scheduler", dyn.Cycles, dyn.Speedup, "")
	fmt.Println("\nEvery configuration was verified to produce the reference output.")
}
