// Quickstart: compile one workload once, then simulate it on every
// machine model of the paper and print the cycle counts and speedups
// over the scalar R2000 baseline. The staged Pipeline API builds the
// workload a single time and reuses the compiled artifact for every
// Simulate call.
//
//	go run ./examples/quickstart [workload]
package main

import (
	"context"
	"fmt"
	"os"

	"boosting"
	"boosting/internal/machine"
)

func main() {
	workload := boosting.WorkloadGrep
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}
	ctx := context.Background()

	ms := boosting.Models()
	configs := []struct {
		name  string
		model *machine.Model
		opts  []boosting.Option
	}{
		{"R2000 (scalar)", ms.Scalar, []boosting.Option{boosting.WithLocalOnly()}},
		{"2-issue, basic block", ms.NoBoost, []boosting.Option{boosting.WithLocalOnly()}},
		{"2-issue, global sched", ms.NoBoost, nil},
		{"Squashing", ms.Squashing, nil},
		{"Boost1", ms.Boost1, nil},
		{"MinBoost3", ms.MinBoost3, nil},
		{"Boost7", ms.Boost7, nil},
	}

	p := boosting.NewPipeline()
	compiled, err := p.Compile(ctx, workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("%-24s %12s %9s %10s %10s\n", "configuration", "cycles", "speedup", "boosted", "squashed")
	for _, c := range configs {
		res, err := p.Simulate(ctx, compiled, c.model, c.opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %12d %8.2fx %10d %10d\n",
			c.name, res.Cycles, res.Speedup, res.BoostedExec, res.Squashed)
	}

	dyn, err := p.SimulateDynamic(ctx, compiled, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	fmt.Printf("%-24s %12d %8.2fx %21s\n", "dynamic scheduler", dyn.Cycles, dyn.Speedup, "")
	fmt.Println("\nEvery configuration was verified to produce the reference output.")
}
