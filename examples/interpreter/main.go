// Interpreter: shows what boosting does to an interpreter's dispatch loop
// (the xlisp workload). It prints the fetch/dispatch blocks of the
// schedule with and without boosting so the hoisted ".Bn" instructions are
// visible, then compares cycle counts across boosting depths.
//
//	go run ./examples/interpreter
package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"boosting"
	"boosting/internal/core"
	"boosting/internal/machine"
)

func main() {
	ctx := context.Background()
	p := boosting.NewPipeline()

	// Compile once; Program() hands each schedule a private clone of the
	// register-allocated, profile-annotated test program.
	compiled, err := p.Compile(ctx, boosting.WorkloadXLisp)
	die(err)

	for _, m := range []*machine.Model{machine.NoBoost(), machine.MinBoost3()} {
		sp, err := core.Schedule(compiled.Program(), m, core.Options{})
		die(err)

		fmt.Printf("== dispatch-loop schedule under %s ==\n", m)
		listing := sp.Procs["main"].Format()
		// Show just the fetch and first dispatch blocks.
		for _, line := range strings.Split(listing, "\n") {
			if strings.Contains(line, "B8") { // past the dispatch head
				break
			}
			fmt.Println(line)
		}
		fmt.Println()
	}

	fmt.Println("== cycle counts across boosting depth ==")
	ms := boosting.Models()
	for _, cfg := range []struct {
		name  string
		model *machine.Model
	}{
		{"NoBoost", ms.NoBoost},
		{"Squashing", ms.Squashing},
		{"Boost1", ms.Boost1},
		{"MinBoost3", ms.MinBoost3},
		{"Boost7", ms.Boost7},
	} {
		res, err := p.Simulate(ctx, compiled, cfg.model)
		die(err)
		fmt.Printf("%-10s %8d cycles  %5.2fx vs scalar  (%d boosted, %d squashed)\n",
			cfg.name, res.Cycles, res.Speedup, res.BoostedExec, res.Squashed)
	}
	fmt.Println("\nBoosted loads cross the tag-check guards: the interpreter fetches")
	fmt.Println("and pops operands speculatively while the dispatch chain resolves.")
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "interpreter:", err)
		os.Exit(1)
	}
}
