// Dynvstatic reproduces the paper's headline comparison (Figure 9): the
// minimal statically-scheduled boosting machine (MinBoost3) against a
// much more complex dynamically-scheduled superscalar with reservation
// stations, a reorder buffer and a branch target buffer — across the full
// benchmark set. The static grid runs concurrently through
// Pipeline.Grid; the dynamic runs share the same compiled artifacts.
//
//	go run ./examples/dynvstatic
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"boosting"
)

func main() {
	ctx := context.Background()
	p := boosting.NewPipeline()

	// One grid cell per workload: MinBoost3, default options. Grid
	// compiles and simulates the cells concurrently and returns them in
	// order.
	var cells []boosting.GridCell
	for _, w := range boosting.Workloads() {
		cells = append(cells, boosting.GridCell{Workload: w, Model: boosting.Models().MinBoost3})
	}
	static, err := p.Grid(ctx, cells)
	die(err)

	fmt.Println("Speedup over the scalar R2000 (higher is better):")
	fmt.Printf("%-10s %12s %12s %14s\n", "workload", "MinBoost3", "dynamic", "dynamic+rename")

	prodMB3, prodDyn := 1.0, 1.0
	n := 0
	for i, w := range boosting.Workloads() {
		die(static[i].Err)
		c, err := p.Compile(ctx, w) // cache hit: Grid already built it
		die(err)
		dyn, err := p.SimulateDynamic(ctx, c, false)
		die(err)
		ren, err := p.SimulateDynamic(ctx, c, true)
		die(err)
		fmt.Printf("%-10s %11.2fx %11.2fx %13.2fx\n",
			w, static[i].Result.Speedup, dyn.Speedup, ren.Speedup)
		prodMB3 *= static[i].Result.Speedup
		prodDyn *= dyn.Speedup
		n++
	}
	gm := func(p float64) float64 { return math.Pow(p, 1.0/float64(n)) }
	fmt.Printf("%-10s %11.2fx %11.2fx\n", "G.M.", gm(prodMB3), gm(prodDyn))
	fmt.Println("\nThe paper's conclusion: \"a statically-scheduled superscalar processor")
	fmt.Println("using a minimal implementation of boosting can easily reach the")
	fmt.Println("performance of a much more complex dynamically-scheduled superscalar")
	fmt.Println("processor\" — the hardware cost difference is a second register file")
	fmt.Println("versus 30 reservation stations, a 16-entry reorder buffer and a")
	fmt.Println("2048-entry BTB.")
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynvstatic:", err)
		os.Exit(1)
	}
}
