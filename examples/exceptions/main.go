// Exceptions: demonstrates the paper's §2.3 boosted-exception machinery on
// a custom program built with the library's IR builder.
//
// The program dereferences a pointer behind a null guard. The scheduler
// boosts the (unsafe) load above the guard. The demo then runs three
// scenarios:
//
//  1. healthy pointer — the boosted load commits normally;
//
//  2. null pointer — the guard mispredicts and the speculative fault is
//     squashed with the shadow state (no exception is ever signalled);
//
//  3. wild pointer to an unmapped page — the prediction holds, the
//     postponed fault surfaces at the commit, the compiler's recovery code
//     re-executes the load sequentially, and the handler sees one precise
//     fault, maps the page and resumes.
//
//     go run ./examples/exceptions
package main

import (
	"fmt"
	"os"

	"boosting/internal/core"
	"boosting/internal/isa"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// build constructs: p = mem[slot]; if p == 0 goto skip; out *p; skip: out 7
func build(ptr uint32) *prog.Program {
	pr := prog.New()
	pr.Word(1234) // the value cell at DataBase
	pr.Word(int32(ptr))

	f := prog.NewBuilder(pr, "main")
	deref := f.Block("deref")
	skip := f.Block("skip")
	base, p, v, c := f.Reg(), f.Reg(), f.Reg(), f.Reg()
	f.La(base, prog.DataBase+4)
	f.Load(isa.LW, p, base, 0)
	f.Branch(isa.BEQ, p, isa.R0, skip, deref)
	f.Enter(deref)
	f.Load(isa.LW, v, p, 0)
	f.Out(v)
	f.Goto(skip)
	f.Enter(skip)
	f.Li(c, 7)
	f.Out(c)
	f.Halt()
	f.Finish()
	return pr
}

func compile(ptr uint32) *machine.SchedProgram {
	// Train on a healthy pointer so the guard predicts "non-null".
	train := build(prog.DataBase)
	must(profile.Annotate(train))
	test := build(ptr)
	must(profile.Transfer(train, test))
	sp, err := core.Schedule(test, machine.MinBoost3(), core.Options{})
	must(err)
	return sp
}

func main() {
	const wild = 0x0030_0000 // non-null but unmapped

	fmt.Println("== compiled schedule (note the boosted load lw ... .B1) ==")
	sp := compile(prog.DataBase)
	fmt.Println(sp.Procs["main"].Format())

	fmt.Println("== scenario 1: healthy pointer ==")
	res, err := sim.Exec(sp, sim.ExecConfig{})
	must(err)
	fmt.Printf("out=%v  recoveries=%d  squashed=%d\n\n", res.Out, res.Recoveries, res.Squashed)

	fmt.Println("== scenario 2: null pointer (mispredict squashes the speculative fault) ==")
	res, err = sim.Exec(compile(0), sim.ExecConfig{})
	must(err)
	fmt.Printf("out=%v  recoveries=%d  squashed=%d  — no exception signalled\n\n",
		res.Out, res.Recoveries, res.Squashed)

	fmt.Println("== scenario 3: wild pointer (postponed fault, precise recovery) ==")
	faults := 0
	res, err = sim.Exec(compile(wild), sim.ExecConfig{
		OnFault: func(m *sim.Memory, f *sim.Fault) bool {
			faults++
			fmt.Printf("precise fault: %s at %#x (boosted=%v) — mapping page and resuming\n",
				f.Kind, f.Addr, f.Boosted)
			m.Map(f.Addr, 4)
			return true
		},
	})
	must(err)
	fmt.Printf("out=%v  recoveries=%d  handler invocations=%d\n", res.Out, res.Recoveries, faults)
	fmt.Println("\nThe recovery path re-raised exactly one sequential (precise) fault,")
	fmt.Println("charged the ~10-cycle boosted-exception-handler overhead, and resumed.")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "exceptions:", err)
		os.Exit(1)
	}
}
