package boosting

import (
	"context"
	"reflect"
	"testing"

	"boosting/internal/machine"
)

// The deprecated one-shot entry points are thin veneers over the staged
// Pipeline API; these regressions pin that they stay result-identical, so
// callers can migrate in either direction without output drift.

func TestCompileAndRunMatchesPipelineRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and simulates several configurations")
	}
	ms := Models()
	cases := []struct {
		name     string
		workload string
		model    *machine.Model
		legacy   Options
		opts     []Option
	}{
		{"baseline", WorkloadGrep, ms.MinBoost3, Options{}, nil},
		{"local-only", WorkloadGrep, ms.NoBoost,
			Options{LocalOnly: true}, []Option{WithLocalOnly()}},
		{"infinite-regs", WorkloadGrep, ms.Boost7,
			Options{InfiniteRegisters: true}, []Option{WithInfiniteRegisters()}},
		{"ablated", WorkloadCompress, ms.Boost1,
			Options{DisableEquivalence: true, NoDisambiguation: true},
			[]Option{WithoutEquivalence(), WithoutDisambiguation()}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := CompileAndRun(tc.workload, tc.model, tc.legacy)
			if err != nil {
				t.Fatalf("CompileAndRun: %v", err)
			}
			staged, err := NewPipeline().Run(context.Background(), tc.workload, tc.model, tc.opts...)
			if err != nil {
				t.Fatalf("Pipeline.Run: %v", err)
			}
			// Pass timings are measured, so the Compile reports can never
			// compare equal; check they agree on shape, then compare the
			// deterministic remainder.
			if legacy.Compile == nil || staged.Compile == nil {
				t.Fatalf("missing compile report: legacy=%v staged=%v", legacy.Compile, staged.Compile)
			}
			if lp, sp := passNames(legacy.Compile), passNames(staged.Compile); !reflect.DeepEqual(lp, sp) {
				t.Errorf("pass lists differ:\nlegacy: %v\nstaged: %v", lp, sp)
			}
			legacy.Compile, staged.Compile = nil, nil
			if !reflect.DeepEqual(legacy, staged) {
				t.Errorf("results differ:\nlegacy: %+v\nstaged: %+v", legacy, staged)
			}
		})
	}
}

// passNames projects a compile report onto its deterministic part.
func passNames(cs *CompileStats) []string {
	names := make([]string, len(cs.Passes))
	for i, p := range cs.Passes {
		names[i] = p.Name
	}
	return names
}

func TestRunDynamicMatchesStagedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and simulates the dynamic machine")
	}
	for _, renaming := range []bool{false, true} {
		legacy, err := RunDynamic(WorkloadGrep, renaming)
		if err != nil {
			t.Fatalf("RunDynamic(renaming=%v): %v", renaming, err)
		}
		ctx := context.Background()
		p := NewPipeline()
		c, err := p.Compile(ctx, WorkloadGrep)
		if err != nil {
			t.Fatal(err)
		}
		staged, err := p.SimulateDynamic(ctx, c, renaming)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, staged) {
			t.Errorf("renaming=%v: results differ:\nlegacy: %+v\nstaged: %+v", renaming, legacy, staged)
		}
	}
}

// TestLegacyOptionsBridge pins the Options -> functional-option mapping:
// every knob must translate, or a legacy caller would silently lose an
// ablation.
func TestLegacyOptionsBridge(t *testing.T) {
	all := Options{
		LocalOnly:          true,
		InfiniteRegisters:  true,
		DisableEquivalence: true,
		NoDisambiguation:   true,
	}
	if got, want := len(all.asOpts()), 4; got != want {
		t.Errorf("asOpts() produced %d options, want %d", got, want)
	}
	if got := len(Options{}.asOpts()); got != 0 {
		t.Errorf("zero Options produced %d options", got)
	}
}
