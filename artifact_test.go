package boosting_test

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"boosting"
	"boosting/internal/artifact"
	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/prog"
	"boosting/internal/sim"
)

// matrixAblations are the scheduler-option cells of the round-trip
// matrix, mirroring boosting.Ablations().
func matrixAblations() []struct {
	name string
	opts core.Options
} {
	return []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.Options{}},
		{"no-equiv", core.Options{DisableEquivalence: true}},
		{"no-disamb", core.Options{NoDisambiguation: true}},
		{"short-traces", core.Options{MaxTraceBlocks: 2}},
		{"local-only", core.Options{LocalOnly: true}},
	}
}

// formatSchedListing renders a scheduled program (including recovery
// sites) as the byte-comparable listing the matrix test diffs.
func formatSchedListing(sp *machine.SchedProgram) string {
	var b strings.Builder
	for _, name := range sp.Prog.Order {
		proc := sp.Procs[name]
		b.WriteString(proc.Format())
		ids := make([]int, 0, len(proc.Recovery))
		for id := range proc.Recovery {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, ".recovery %d:\n", id)
			for _, inst := range proc.Recovery[id] {
				fmt.Fprintf(&b, "\t%s\n", inst.String())
			}
		}
	}
	return b.String()
}

// TestArtifactScheduleMatrix is the round-trip property test: for every
// workload, encoding the compiled program and decoding it back must give
// a program that schedules byte-identically to the original across every
// machine model × scheduler-ablation cell (7 × 6 × 5 = 210 cells in the
// full run).
func TestArtifactScheduleMatrix(t *testing.T) {
	ctx := context.Background()
	workloads := boosting.Workloads()
	if testing.Short() {
		workloads = workloads[:2]
	}
	models := goldenModels()
	ablations := matrixAblations()
	cells := 0
	for _, name := range workloads {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := boosting.NewPipeline().Compile(ctx, name)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			data, err := c.Artifact().Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			a, err := boosting.DecodeArtifact(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if want, got := prog.FormatProgram(c.Program()), prog.FormatProgram(a.Program); want != got {
				t.Fatal("decoded program listing differs from the original")
			}
			for _, m := range models {
				for _, ab := range ablations {
					opts := ab.opts
					if m.model.IssueWidth == 1 {
						opts.LocalOnly = true
					}
					sp1, err := core.Schedule(prog.Clone(c.Program()), m.model, opts)
					if err != nil {
						t.Fatalf("%s/%s: schedule original: %v", m.name, ab.name, err)
					}
					sp2, err := core.Schedule(prog.Clone(a.Program), m.model, opts)
					if err != nil {
						t.Fatalf("%s/%s: schedule decoded: %v", m.name, ab.name, err)
					}
					if formatSchedListing(sp1) != formatSchedListing(sp2) {
						t.Errorf("%s/%s/%s: schedule from decoded artifact differs from original",
							name, m.name, ab.name)
					}
				}
			}
		})
		cells += len(models) * len(ablations)
	}
	t.Logf("matrix: %d workloads × %d models × %d ablations = %d cells",
		len(workloads), len(models), len(ablations), cells)
}

// artifactDigest schedules the program, round-trips the schedule through
// the artifact codec, and executes the decoded schedule — the exact code
// path of a warm start.
func artifactDigest(t *testing.T, master *prog.Program, model *machine.Model) goldenDigest {
	t.Helper()
	sp, err := core.Schedule(prog.Clone(master), model, core.Options{LocalOnly: model.IssueWidth == 1})
	if err != nil {
		t.Fatalf("%s: schedule: %v", model.Name, err)
	}
	data, err := artifact.EncodeSchedProgram(sp)
	if err != nil {
		t.Fatalf("%s: encode: %v", model.Name, err)
	}
	sp2, err := artifact.DecodeSchedProgram(data)
	if err != nil {
		t.Fatalf("%s: decode: %v", model.Name, err)
	}
	return schedDigest(t, model.Name, sp2, sim.EngineFast)
}

// TestGoldenViaArtifact asserts that executing a schedule decoded from
// its artifact encoding produces the same golden digest as executing the
// schedule that was encoded — every counter, output word and store event.
func TestGoldenViaArtifact(t *testing.T) {
	names := []string{"grep", "eqntott"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			master := compileGolden(t, name)
			for _, m := range goldenModels() {
				direct := execDigest(t, master, m.model, sim.EngineFast)
				via := artifactDigest(t, master, m.model)
				if direct != via {
					t.Errorf("%s on %s: decoded-artifact digest differs:\ndirect: %+v\nvia:    %+v",
						name, m.name, direct, via)
				}
			}
		})
	}
}

// TestCompileFromArtifact is the fresh-process warm start: a pipeline
// that has never compiled anything installs a decoded artifact and
// simulates with zero schedule passes, matching the original results.
func TestCompileFromArtifact(t *testing.T) {
	ctx := context.Background()
	model := machine.MinBoost3()

	p1 := boosting.NewPipeline()
	c1, err := p1.Compile(ctx, boosting.WorkloadGrep)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	r1, err := p1.Simulate(ctx, c1, model)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	data, err := c1.Artifact().Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	// A brand-new pipeline: nothing compiled, nothing cached.
	p2 := boosting.NewPipeline()
	a, err := boosting.DecodeArtifact(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c2, err := p2.CompileFromArtifact(ctx, a)
	if err != nil {
		t.Fatalf("CompileFromArtifact: %v", err)
	}
	if c2.Source() != "artifact" {
		t.Errorf("Source = %q, want artifact", c2.Source())
	}
	r2, err := p2.Simulate(ctx, c2, model)
	if err != nil {
		t.Fatalf("simulate from artifact: %v", err)
	}
	if n := p2.SchedulePasses(); n != 0 {
		t.Errorf("warm pipeline ran %d schedule passes, want 0", n)
	}
	if r1.Cycles != r2.Cycles || r1.ScalarCycles != r2.ScalarCycles || r1.Insts != r2.Insts ||
		r1.BoostedExec != r2.BoostedExec || r1.Squashed != r2.Squashed {
		t.Errorf("results differ:\ncold: %+v\nwarm: %+v", r1, r2)
	}
	if !equalUint32s(r1.Out, r2.Out) {
		t.Error("output stream differs between cold and warm runs")
	}

	// Re-installing under the same identity returns the existing entry.
	c3, err := p2.CompileFromArtifact(ctx, a)
	if err != nil {
		t.Fatalf("second CompileFromArtifact: %v", err)
	}
	if c3 != c2 {
		t.Error("second CompileFromArtifact did not return the memoized entry")
	}
}

func equalUint32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPipelineDiskWarmStart drives the full disk path through the public
// option: pipeline 1 writes through an artifact cache, pipeline 2 (same
// directory, fresh process state) compiles nothing at all.
func TestPipelineDiskWarmStart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	model := machine.MinBoost3()

	store1, err := artifact.OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	cache1 := artifact.NewCache(store1, nil)
	p1 := boosting.NewPipeline(boosting.WithArtifactCache(cache1))
	r1, err := p1.Run(ctx, boosting.WorkloadGrep, model)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if _, err := cache1.Close(); err != nil {
		t.Fatalf("close cache: %v", err)
	}

	store2, err := artifact.OpenStore(dir, 0)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	cache2 := artifact.NewCache(store2, nil)
	defer cache2.Close()
	p2 := boosting.NewPipeline(boosting.WithArtifactCache(cache2))
	c2, err := p2.Compile(ctx, boosting.WorkloadGrep)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if c2.Source() != "disk" {
		t.Errorf("warm compile source = %q, want disk", c2.Source())
	}
	r2, err := p2.Simulate(ctx, c2, model)
	if err != nil {
		t.Fatalf("warm simulate: %v", err)
	}
	if n := p2.SchedulePasses(); n != 0 {
		t.Errorf("warm pipeline ran %d schedule passes, want 0", n)
	}
	if r1.Cycles != r2.Cycles || r1.ScalarCycles != r2.ScalarCycles || !equalUint32s(r1.Out, r2.Out) {
		t.Errorf("disk-warm results differ: cold cycles=%d/%d, warm cycles=%d/%d",
			r1.Cycles, r1.ScalarCycles, r2.Cycles, r2.ScalarCycles)
	}
	if st := cache2.Stats(); st.DiskHits != 1 {
		t.Errorf("warm cache stats = %+v, want one disk hit", st)
	}
}

// TestDecodeArtifactAdversarial exercises the public decoder with hostile
// input: every prefix truncation and a sample of bit flips must fail with
// an error — never a panic, never a silently wrong artifact.
func TestDecodeArtifactAdversarial(t *testing.T) {
	ctx := context.Background()
	c, err := boosting.NewPipeline().Compile(ctx, boosting.WorkloadGrep)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	data, err := c.Artifact().Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < len(data); i += 127 {
		if _, err := boosting.DecodeArtifact(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	for i := 0; i < len(data); i += 379 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if _, err := boosting.DecodeArtifact(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
	}
	if _, err := boosting.DecodeArtifact(bytes.Repeat([]byte{0xFF}, 256)); err == nil {
		t.Fatal("garbage decoded successfully")
	}
	if _, err := boosting.DecodeArtifact(nil); err == nil {
		t.Fatal("nil input decoded successfully")
	}
}

// TestArtifactCacheIsAccelerator: a cache whose Get always errors must
// never break compilation — compiling is the fallback.
func TestArtifactCacheIsAccelerator(t *testing.T) {
	ctx := context.Background()
	p := boosting.NewPipeline(boosting.WithArtifactCache(failingCache{}))
	c, err := p.Compile(ctx, boosting.WorkloadGrep)
	if err != nil {
		t.Fatalf("compile with failing cache: %v", err)
	}
	if c.Source() != "compile" {
		t.Errorf("source = %q, want compile", c.Source())
	}
}

type failingCache struct{}

func (failingCache) Get(ctx context.Context, key string) (*boosting.Artifact, string, error) {
	return nil, "", fmt.Errorf("cache offline")
}

func (failingCache) Put(ctx context.Context, key string, a *boosting.Artifact) error {
	return fmt.Errorf("cache offline")
}

var _ boosting.ArtifactCache = failingCache{}
