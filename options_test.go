package boosting

import (
	"context"
	"testing"

	"boosting/internal/machine"
)

func TestAblationsEnumeration(t *testing.T) {
	abls := Ablations()
	if len(abls) < 5 {
		t.Fatalf("only %d ablations", len(abls))
	}
	if abls[0].Name != "baseline" || len(abls[0].Opts) != 0 {
		t.Errorf("first ablation must be the empty baseline, got %q with %d opts",
			abls[0].Name, len(abls[0].Opts))
	}
	seen := map[string]bool{}
	for _, a := range abls {
		if a.Name == "" {
			t.Error("unnamed ablation")
		}
		if seen[a.Name] {
			t.Errorf("duplicate ablation %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestAblationCellsRun: the ablation sweep must enumerate every ablation
// per (workload, model) and every cell must actually run.
func TestAblationCellsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full ablation sweep on one workload")
	}
	cells := AblationCells([]string{WorkloadGrep}, []*machine.Model{machine.MinBoost3()})
	if len(cells) != len(Ablations()) {
		t.Fatalf("%d cells, want %d", len(cells), len(Ablations()))
	}
	results, err := NewPipeline().Grid(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Cell.Workload, r.Cell.Label, r.Err)
			continue
		}
		if r.Cell.Label == "" {
			t.Error("cell missing ablation label")
		}
		if r.Result.Cycles <= 0 {
			t.Errorf("%s/%s: nonpositive cycles", r.Cell.Workload, r.Cell.Label)
		}
	}
}
