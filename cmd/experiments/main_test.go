package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"stray argument", []string{"table1"}},
		{"negative parallel", []string{"-parallel", "-2"}},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		if code := run(tc.args, &out, &errw); code != 2 {
			t.Errorf("%s: run(%v) = %d, want 2", tc.name, tc.args, code)
		}
		if errw.Len() == 0 {
			t.Errorf("%s: expected a usage message on stderr", tc.name)
		}
	}
}

func TestHWReportNeedsNoSimulation(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-hw"}, &out, &errw); code != 0 {
		t.Fatalf("run(-hw) = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), "Shadow register file hardware costs") {
		t.Errorf("missing hardware cost report:\n%s", out.String())
	}
}

func TestCSVCreateFailure(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.csv")
	var out, errw bytes.Buffer
	// -hw keeps the run cheap; the CSV step still executes and fails.
	if code := run([]string{"-hw", "-csv", bad}, &out, &errw); code != 1 {
		t.Fatalf("run with unwritable -csv = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "experiments:") {
		t.Errorf("stderr missing prefixed error: %q", errw.String())
	}
}

func TestTable1Report(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment grid in -short mode")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-table1"}, &out, &errw); code != 0 {
		t.Fatalf("run(-table1) = %d, want 0 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), "== Table 1:") {
		t.Errorf("missing Table 1 header:\n%s", out.String())
	}
}
