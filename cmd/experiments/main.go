// Command experiments regenerates the paper's evaluation: Table 1,
// Figure 8, Table 2, Figure 9, and the prose claims on exception-handling
// cost and shadow register file hardware cost. The grid behind each
// table/figure runs on a concurrent worker pool with memoized artifacts;
// output is identical at any parallelism.
//
// Usage:
//
//	experiments -all
//	experiments -table2 -fig9 -parallel 4
//	experiments -all -metrics
//	experiments -all -metrics-json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"boosting/internal/experiments"
	"boosting/internal/hwcost"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	t1 := flag.Bool("table1", false, "Table 1: benchmark simulation information")
	f8 := flag.Bool("fig8", false, "Figure 8: speedups without speculation hardware")
	t2 := flag.Bool("table2", false, "Table 2: improvements from boosting configurations")
	f9 := flag.Bool("fig9", false, "Figure 9: MinBoost3 vs the dynamic scheduler")
	costs := flag.Bool("costs", false, "exception-handling costs (§2.3)")
	hw := flag.Bool("hw", false, "shadow register file hardware costs (§4.3.2)")
	csvPath := flag.String("csv", "", "also write all results as tidy CSV to this file")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false, "print per-stage pipeline metrics after the experiments")
	metricsJSON := flag.Bool("metrics-json", false, "print per-stage pipeline metrics as JSON")
	flag.Parse()

	if !(*all || *t1 || *f8 || *t2 || *f9 || *costs || *hw) {
		*all = true
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s := experiments.NewSuite()
	s.Runner.Parallelism = *parallel
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *all || *t1 {
		rows, err := s.Table1(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Table 1: Benchmark programs and their simulation information ==")
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *all || *f8 {
		rows, gmBB, gmGl, err := s.Figure8(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Figure 8: Performance achievable without speculative execution hardware ==")
		fmt.Println(experiments.FormatFigure8(rows, gmBB, gmGl))
		fmt.Println(experiments.Figure8Chart(rows))
	}
	if *all || *t2 {
		rows, geo, err := s.Table2(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Table 2: Performance improvements over global scheduling ==")
		fmt.Println(experiments.FormatTable2(rows, geo))
	}
	if *all || *f9 {
		rows, gmMB3, gmDyn, err := s.Figure9(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Figure 9: Performance comparison with a dynamic scheduler ==")
		fmt.Println(experiments.FormatFigure9(rows, gmMB3, gmDyn))
		fmt.Println(experiments.Figure9Chart(rows))
	}
	if *all || *costs {
		ec, err := s.ExceptionCostsReport(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("== Boosted exception handling costs (paper §2.3) ==")
		fmt.Printf("handler entry overhead: %d cycles\n", ec.HandlerOverhead)
		fmt.Println("object growth under MinBoost3 (scheduled+recovery / original):")
		for _, w := range s.Workloads {
			fmt.Printf("  %-10s %.2fx\n", w.Name, ec.Growth[w.Name])
		}
		fmt.Println()
	}
	if *all || *hw {
		fmt.Println("== Shadow register file hardware costs (paper §4.3.2) ==")
		fmt.Print(hwcost.NewReport().String())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := s.WriteCSV(ctx, f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *csvPath)
	}
	if *metricsJSON {
		js, err := s.Metrics().JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(js)
	} else if *metrics {
		fmt.Println("== Pipeline metrics ==")
		fmt.Print(s.Metrics().String())
	}
}
