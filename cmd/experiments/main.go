// Command experiments regenerates the paper's evaluation: Table 1,
// Figure 8, Table 2, Figure 9, the prose claims on exception-handling
// cost and shadow register file hardware cost, and the memory-hierarchy
// ablation (boosting loads past cache misses). The grid behind each
// table/figure runs on a concurrent worker pool with memoized artifacts;
// output is identical at any parallelism.
//
// Usage:
//
//	experiments -all
//	experiments -table2 -fig9 -parallel 4
//	experiments -all -metrics
//	experiments -all -metrics-json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"boosting/internal/experiments"
	"boosting/internal/hwcost"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body. Exit codes: 0 success, 1 experiment
// or I/O failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	all := fs.Bool("all", false, "run every experiment")
	t1 := fs.Bool("table1", false, "Table 1: benchmark simulation information")
	f8 := fs.Bool("fig8", false, "Figure 8: speedups without speculation hardware")
	t2 := fs.Bool("table2", false, "Table 2: improvements from boosting configurations")
	f9 := fs.Bool("fig9", false, "Figure 9: MinBoost3 vs the dynamic scheduler")
	costs := fs.Bool("costs", false, "exception-handling costs (§2.3)")
	hw := fs.Bool("hw", false, "shadow register file hardware costs (§4.3.2)")
	mh := fs.Bool("memhier", false, "memory-hierarchy ablation: boosted loads × boost level × prefetcher")
	csvPath := fs.String("csv", "", "also write all results as tidy CSV to this file")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	metrics := fs.Bool("metrics", false, "print per-stage pipeline metrics after the experiments")
	metricsJSON := fs.Bool("metrics-json", false, "print per-stage pipeline metrics as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "experiments: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintln(stderr, "experiments: -parallel must be >= 0")
		return 2
	}

	if !(*all || *t1 || *f8 || *t2 || *f9 || *costs || *hw || *mh) {
		*all = true
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	s := experiments.NewSuite()
	s.Runner.Parallelism = *parallel
	fail := func(err error) int {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	if *all || *t1 {
		rows, err := s.Table1(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Table 1: Benchmark programs and their simulation information ==")
		fmt.Fprintln(stdout, experiments.FormatTable1(rows))
	}
	if *all || *f8 {
		rows, gmBB, gmGl, err := s.Figure8(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Figure 8: Performance achievable without speculative execution hardware ==")
		fmt.Fprintln(stdout, experiments.FormatFigure8(rows, gmBB, gmGl))
		fmt.Fprintln(stdout, experiments.Figure8Chart(rows))
	}
	if *all || *t2 {
		rows, geo, err := s.Table2(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Table 2: Performance improvements over global scheduling ==")
		fmt.Fprintln(stdout, experiments.FormatTable2(rows, geo))
	}
	if *all || *f9 {
		rows, gmMB3, gmDyn, err := s.Figure9(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Figure 9: Performance comparison with a dynamic scheduler ==")
		fmt.Fprintln(stdout, experiments.FormatFigure9(rows, gmMB3, gmDyn))
		fmt.Fprintln(stdout, experiments.Figure9Chart(rows))
	}
	if *all || *costs {
		ec, err := s.ExceptionCostsReport(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Boosted exception handling costs (paper §2.3) ==")
		fmt.Fprintf(stdout, "handler entry overhead: %d cycles\n", ec.HandlerOverhead)
		fmt.Fprintln(stdout, "object growth under MinBoost3 (scheduled+recovery / original):")
		for _, w := range s.Workloads {
			fmt.Fprintf(stdout, "  %-10s %.2fx\n", w.Name, ec.Growth[w.Name])
		}
		fmt.Fprintln(stdout)
	}
	if *all || *hw {
		fmt.Fprintln(stdout, "== Shadow register file hardware costs (paper §4.3.2) ==")
		fmt.Fprint(stdout, hwcost.NewReport().String())
	}
	if *all || *mh {
		rows, err := s.MemHierAblation(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "== Memory-hierarchy ablation: boosting loads past cache misses ==")
		fmt.Fprintln(stdout, experiments.FormatMemHier(rows))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fail(err)
		}
		if err := s.WriteCSV(ctx, f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "wrote", *csvPath)
	}
	if *metricsJSON {
		js, err := s.Metrics().JSON()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, js)
	} else if *metrics {
		fmt.Fprintln(stdout, "== Pipeline metrics ==")
		fmt.Fprint(stdout, s.Metrics().String())
	}
	return 0
}
