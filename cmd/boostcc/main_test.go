package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testAsm is a small program whose hot loop contains a profitable branch,
// so scheduling it exercises real code motion.
const testAsm = `; boostcc test program
.word 3
.word -1
.word 4
.word -1
.word 5
.word -9
.reserve 64

.proc main
entry:
	li v0, 0x10000
	li v1, 6
	li v2, 0
	li v3, 0
	;fallthrough -> loop
loop:
	add v4, v0, v3
	lw v5, 0(v4)
	bltz v5, neg, pos
pos:
	add v2, v2, v5
	j next
neg:
	sub v2, v2, v5
	sw v2, 24(v4)
	j next
next:
	addi v3, v3, 4
	addi v1, v1, -1
	bgtz v1, loop, done
done:
	out v2
	halt
`

func runCC(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func writeAsm(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(testAsm), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                   // neither -workload nor -asm
		{"-workload", "grep", "-asm", "x.s"}, // both
		{"-no-such-flag"},
		{"-workload", "grep", "stray"},
	}
	for _, args := range cases {
		if code, _, _ := runCC(t, args...); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	if code, _, stderr := runCC(t, "-workload", "grep", "-model", "bogus"); code != 1 {
		t.Errorf("bad model: code %d (stderr %q), want 1", code, stderr)
	}
	if code, _, stderr := runCC(t, "-asm", "/no/such/file.s"); code != 1 {
		t.Errorf("missing asm: code %d (stderr %q), want 1", code, stderr)
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(bad, []byte("not assembly ???"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCC(t, "-asm", bad); code != 1 {
		t.Errorf("unparseable asm: code %d (stderr %q), want 1", code, stderr)
	}
}

func TestAsmCompile(t *testing.T) {
	path := writeAsm(t)
	code, stdout, stderr := runCC(t, "-asm", path, "-model", "MinBoost3",
		"-pass-stats", "-verify-each", "-src")
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"== program IR ==",
		"== schedule for",
		"== pass stats",
		"parse", "regalloc", "profile",
		"trace-select", "ddg-build", "list-schedule", "recovery-emit",
		"motions", "analysis cache",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPassStatsOffByDefault(t *testing.T) {
	path := writeAsm(t)
	code, stdout, stderr := runCC(t, "-asm", path)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "pass stats") {
		t.Error("pass stats printed without -pass-stats")
	}
}

func TestWorkloadCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("workload compile in -short mode")
	}
	code, stdout, stderr := runCC(t, "-workload", "grep", "-model", "Boost7", "-pass-stats", "-verify-each")
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"== schedule for", "build", "regalloc", "reference-run", "schedule"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
