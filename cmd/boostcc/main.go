// Command boostcc is the compiler driver: it builds a workload (or parses
// an assembly file), profiles it, register-allocates, schedules it for a
// machine model, and prints the resulting machine schedule with boosting
// labels, compensation blocks and recovery-code sites.
//
// Usage:
//
//	boostcc -workload grep -model MinBoost3
//	boostcc -workload xlisp -model Boost7 -src      # also print the IR
//	boostcc -asm prog.s -model Boost1               # compile an .s file
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"boosting"
	"boosting/internal/core"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
)

func main() {
	workload := flag.String("workload", "", "workload name: "+strings.Join(boosting.Workloads(), ", "))
	asmFile := flag.String("asm", "", "assembly file to compile instead of a workload")
	model := flag.String("model", "MinBoost3", "machine model")
	src := flag.Bool("src", false, "also print the program IR before scheduling")
	local := flag.Bool("local", false, "basic-block scheduling only")
	inf := flag.Bool("inf", false, "infinite register model (skip register allocation)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "boostcc:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	m, err := boosting.ModelByName(*model)
	if err != nil {
		fail(err)
	}

	var pr *prog.Program
	switch {
	case *asmFile != "":
		// Assembly input bypasses the workload pipeline: parse, then run
		// the same allocate/profile stages by hand.
		text, err := os.ReadFile(*asmFile)
		if err != nil {
			fail(err)
		}
		pr, err = prog.Parse(string(text))
		if err != nil {
			fail(err)
		}
		if !*inf {
			if _, err := regalloc.Allocate(pr); err != nil {
				fail(err)
			}
		}
		if err := profile.Annotate(pr); err != nil {
			fail(err)
		}
	case *workload != "":
		var opts []boosting.Option
		if *inf {
			opts = append(opts, boosting.WithInfiniteRegisters())
		}
		c, err := boosting.NewPipeline().Compile(ctx, *workload, opts...)
		if err != nil {
			fail(err)
		}
		pr = c.Program()
	default:
		fail(fmt.Errorf("pass -workload or -asm"))
	}

	if *src {
		fmt.Println("== program IR ==")
		fmt.Println(prog.FormatProgram(pr))
	}

	sp, err := core.Schedule(pr, m, core.Options{LocalOnly: *local})
	if err != nil {
		fail(err)
	}
	fmt.Printf("== schedule for %s (object growth %.2fx) ==\n", m, sp.ObjectGrowth())
	for _, name := range pr.Order {
		fmt.Print(sp.Procs[name].Format())
	}
	for _, name := range pr.Order {
		p := sp.Procs[name]
		for id, rec := range p.Recovery {
			fmt.Printf(".recovery for branch %d in %s:\n", id, name)
			for i := range rec {
				fmt.Printf("\t%s\n", rec[i].String())
			}
		}
	}
}
