// Command boostcc is the compiler driver: it builds a workload (or parses
// an assembly file), profiles it, register-allocates, schedules it for a
// machine model, and prints the resulting machine schedule with boosting
// labels, compensation blocks and recovery-code sites.
//
// Usage:
//
//	boostcc -workload grep -model MinBoost3
//	boostcc -workload xlisp -model Boost7 -src       # also print the IR
//	boostcc -asm prog.s -model Boost1                # compile an .s file
//	boostcc -workload grep -pass-stats               # per-pass report
//	boostcc -asm prog.s -verify-each                 # verify IR between passes
//	boostcc -workload grep -emit grep.bsta           # save a compile artifact
//	boostcc -load grep.bsta -model MinBoost3         # warm-start from one
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	"boosting"
	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/passes"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body. Exit codes: 0 success, 1 compile or
// verification failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("boostcc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name: "+strings.Join(boosting.Workloads(), ", "))
	asmFile := fs.String("asm", "", "assembly file to compile instead of a workload")
	model := fs.String("model", "MinBoost3", "machine model: R2000, NoBoost, Squashing, Boost1, MinBoost3, Boost7")
	src := fs.Bool("src", false, "also print the program IR before scheduling")
	local := fs.Bool("local", false, "basic-block scheduling only")
	inf := fs.Bool("inf", false, "infinite register model (skip register allocation)")
	passStats := fs.Bool("pass-stats", false, "print per-pass compile timings and scheduler counters")
	verifyEach := fs.Bool("verify-each", false, "run the IR verifier between compile passes")
	emit := fs.String("emit", "", "write the compiled workload and its schedule as a binary artifact to this file (requires -workload)")
	load := fs.String("load", "", "warm-start from a previously emitted artifact instead of compiling")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "boostcc: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *load != "" {
		if *workload != "" || *asmFile != "" {
			fmt.Fprintln(stderr, "boostcc: -load replaces -workload/-asm")
			return 2
		}
	} else if (*workload == "") == (*asmFile == "") {
		fmt.Fprintln(stderr, "boostcc: pass exactly one of -workload or -asm")
		return 2
	}
	if *emit != "" && *workload == "" {
		fmt.Fprintln(stderr, "boostcc: -emit requires -workload")
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "boostcc:", err)
		return 1
	}

	m, err := boosting.ModelByName(*model)
	if err != nil {
		return fail(err)
	}

	pm := passes.NewManager()
	pm.VerifyEach = *verifyEach
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		pr  *prog.Program
		c   *boosting.Compiled
		art *boosting.Artifact
	)
	switch {
	case *asmFile != "":
		// Assembly input bypasses the workload pipeline: parse, then run
		// the same allocate/profile stages as named passes.
		err = pm.Run("parse", func() error {
			text, err := os.ReadFile(*asmFile)
			if err != nil {
				return err
			}
			pr, err = prog.Parse(string(text))
			return err
		})
		if err == nil && !*inf {
			err = pm.Run("regalloc", func() error {
				_, err := regalloc.Allocate(pr)
				return err
			}, pr)
		}
		if err == nil {
			err = pm.Run("profile", func() error {
				return profile.Annotate(pr)
			}, pr)
		}
		if err != nil {
			return fail(err)
		}
	case *load != "":
		data, err := os.ReadFile(*load)
		if err != nil {
			return fail(err)
		}
		if art, err = boosting.DecodeArtifact(data); err != nil {
			return fail(err)
		}
		if c, err = boosting.NewPipeline().CompileFromArtifact(ctx, art); err != nil {
			return fail(err)
		}
		pr = c.Program()
		pm.Stats().Add(c.CompileStats())
		fmt.Fprintf(stdout, "boostcc: loaded artifact for %s (%d recorded schedules)\n",
			c.Workload, len(art.Variants))
	default:
		opts := []boosting.Option{}
		if *inf {
			opts = append(opts, boosting.WithInfiniteRegisters())
		}
		if *verifyEach {
			opts = append(opts, boosting.WithVerifyEach())
		}
		var err error
		c, err = boosting.NewPipeline().Compile(ctx, *workload, opts...)
		if err != nil {
			return fail(err)
		}
		pr = c.Program()
		pm.Stats().Add(c.CompileStats())
	}

	if *src {
		fmt.Fprintln(stdout, "== program IR ==")
		fmt.Fprintln(stdout, prog.FormatProgram(pr))
	}

	copts := core.Options{LocalOnly: *local}
	var sp *machine.SchedProgram
	if art != nil {
		if v := art.FindVariant(m, copts); v != nil {
			sp = v.Sched
			fmt.Fprintln(stdout, "boostcc: reusing recorded schedule from artifact")
		}
	}
	if sp == nil {
		var err error
		sp, err = pm.Schedule(pr, m, copts)
		if err != nil {
			return fail(err)
		}
	}
	if *emit != "" {
		a := c.Artifact()
		a.AddVariant(sp, copts, pm.Stats())
		data, err := a.Encode()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*emit, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "boostcc: wrote artifact to %s (%d bytes)\n", *emit, len(data))
	}
	fmt.Fprintf(stdout, "== schedule for %s (object growth %.2fx) ==\n", m, sp.ObjectGrowth())
	for _, name := range sp.Prog.Order {
		fmt.Fprint(stdout, sp.Procs[name].Format())
	}
	for _, name := range sp.Prog.Order {
		p := sp.Procs[name]
		for id, rec := range p.Recovery {
			fmt.Fprintf(stdout, ".recovery for branch %d in %s:\n", id, name)
			for i := range rec {
				fmt.Fprintf(stdout, "\t%s\n", rec[i].String())
			}
		}
	}
	if *passStats {
		printPassStats(stdout, pm.Stats())
	}
	return 0
}

// printPassStats renders the compile report: one row per pass (scheduler
// stage rows indented under "schedule"), then the scheduler's counters.
func printPassStats(w io.Writer, cs *boosting.CompileStats) {
	fmt.Fprintf(w, "== pass stats (total %.6fs) ==\n", cs.TotalSeconds)
	for _, row := range cs.Passes {
		name := row.Name
		switch name {
		case "trace-select", "ddg-build", "list-schedule", "recovery-emit":
			name = "  " + name
		}
		fmt.Fprintf(w, "%-16s %10.6fs\n", name, row.Seconds)
	}
	st := cs.Sched()
	if st == nil {
		return
	}
	fmt.Fprintf(w, "traces           %d formed over %d blocks\n", st.TracesFormed, st.TraceBlocks)
	fmt.Fprintf(w, "motions          %d attempted, %d placed (%d boosted)\n",
		st.MotionsAttempted, st.MotionsPlaced, st.BoostedPlaced())
	for l, c := range st.BoostedByLevel {
		if l > 0 && c > 0 {
			fmt.Fprintf(w, "  level %-2d       %d\n", l, c)
		}
	}
	if len(st.Rejections) > 0 {
		reasons := make([]string, 0, len(st.Rejections))
		for r := range st.Rejections {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprintln(w, "rejections")
		for _, r := range reasons {
			fmt.Fprintf(w, "  %-24s %d\n", r, st.Rejections[r])
		}
	}
	fmt.Fprintf(w, "compensation     %d copies, %d edge splits\n", st.CompensationCopies, st.EdgeSplits)
	fmt.Fprintf(w, "recovery         %d sites, %d insts\n", st.RecoverySites, st.RecoveryInsts)
	a := st.Analysis
	fmt.Fprintf(w, "analysis cache   %d cfg + %d liveness + %d loop computes, %d hits, %d invalidations\n",
		a.CFGComputes, a.LivenessComputes, a.LoopComputes, a.Hits, a.Invalidations)
}
