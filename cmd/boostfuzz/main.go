// Command boostfuzz drives differential-fuzzing campaigns against the
// boosting toolchain: every seed derives a random program that runs
// through the reference interpreter and every compiled configuration
// (machine model × register regime × scheduler ablation, plus the dynamic
// scheduler); any observable divergence is delta-debugged down to a
// minimal reproducer and optionally persisted to the regression corpus.
//
// Usage:
//
//	boostfuzz -duration 30s -parallel 4
//	boostfuzz -max 1000 -seed 7 -full -json
//	boostfuzz -duration 60s -save internal/difftest/testdata/corpus
//	boostfuzz -replay internal/difftest/testdata/corpus
//	boostfuzz -duration 10s -inject store-squash   (self-test: must find bugs)
//
// Exit status: 0 when every program agrees, 1 on any divergence, 2 on
// infrastructure errors (invalid flags, unwritable corpus, generator bug).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"boosting/internal/difftest"
	"boosting/internal/sim"
)

func main() {
	duration := flag.Duration("duration", 30*time.Second, "campaign wall-clock budget (0 = until -max or interrupt)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "base campaign seed; program i uses seed+i")
	maxProgs := flag.Int64("max", 0, "stop after this many programs (0 = unbounded)")
	full := flag.Bool("full", false, "full configuration matrix (ablations, intermediate boost levels)")
	jsonOut := flag.Bool("json", false, "emit campaign stats as JSON on stdout")
	save := flag.String("save", "", "persist minimized findings to this corpus directory")
	replay := flag.String("replay", "", "replay a corpus directory instead of fuzzing")
	inject := flag.String("inject", "", "plant a simulator bug for oracle self-tests: store-squash or shadow-squash")
	findings := flag.Int("findings", 0, "stop after this many divergent seeds (0 = 10)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "boostfuzz:", err)
		os.Exit(2)
	}

	var fi sim.FaultInjection
	switch *inject {
	case "":
	case "store-squash":
		fi.SkipStoreSquash = true
	case "shadow-squash":
		fi.SkipShadowSquash = true
	default:
		fail(fmt.Errorf("unknown -inject %q (want store-squash or shadow-squash)", *inject))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *replay != "" {
		replayCorpus(*replay, fi, *full, *jsonOut, fail)
		return
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stats, err := difftest.RunCampaign(ctx, difftest.CampaignOptions{
		Duration:    *duration,
		Parallel:    workers,
		Seed:        *seed,
		MaxPrograms: *maxProgs,
		MaxFindings: *findings,
		Full:        *full,
		Inject:      fi,
		CorpusDir:   *save,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "boostfuzz: "+format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("boostfuzz: %d programs in %.1fs (%.0f/s), %d divergent\n",
			stats.Programs, stats.Seconds, stats.Rate, stats.Divergent)
		for _, f := range stats.Findings {
			fmt.Printf("  seed %d: %s", f.Seed, f.Divergences[0])
			if f.CorpusPath != "" {
				fmt.Printf(" -> %s", f.CorpusPath)
			}
			fmt.Println()
		}
	}
	if stats.Divergent > 0 {
		os.Exit(1)
	}
}

// replayCorpus runs every corpus entry through the oracle and reports
// failures, mirroring the tier-1 regression test for ad-hoc use.
func replayCorpus(dir string, fi sim.FaultInjection, full, jsonOut bool, fail func(error)) {
	opt := difftest.Options{Inject: fi}
	if full {
		opt.Configs = difftest.Configs(true)
	}
	entries, err := difftest.LoadDir(dir)
	if err != nil {
		fail(err)
	}
	if len(entries) == 0 {
		fail(fmt.Errorf("no corpus entries in %s", dir))
	}
	failures, err := difftest.ReplayDir(dir, opt)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(failures); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("boostfuzz: replayed %d corpus entries, %d failing\n", len(entries), len(failures))
		for name, divs := range failures {
			for _, d := range divs {
				fmt.Printf("  %s: %s\n", name, d)
			}
		}
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
