// Command boostd serves the boosting toolchain as a long-lived HTTP/JSON
// daemon: compile and simulate requests hit the staged pipeline behind a
// bounded admission queue with backpressure, identical requests are
// deduplicated through a singleflight response cache, and /metrics
// exposes Prometheus counters, gauges and latency histograms. See
// docs/SERVICE.md for the API schema.
//
// Usage:
//
//	boostd -addr :8344
//	boostd -addr 127.0.0.1:0 -inflight 4 -queue 16 -timeout 30s
//
// boostd drains gracefully: SIGINT/SIGTERM stops accepting connections,
// lets in-flight requests finish (up to -drain), then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"boosting/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable daemon body: it parses args, serves until a
// signal, and returns the process exit code (0 clean shutdown, 1 runtime
// failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("boostd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
	inflight := fs.Int("inflight", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := fs.Int("queue", 64, "max requests waiting for an execution slot before 429s")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request deadline")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	gridCap := fs.Int("grid-cap", 1024, "max cells per /v1/grid sweep")
	artifactDir := fs.String("artifact-dir", "", "directory for the content-addressed compile-artifact store (empty disables it)")
	artifactMax := fs.Int64("artifact-max", 256<<20, "artifact store size cap in bytes (oldest entries evicted)")
	peers := fs.String("peers", "", "comma-separated base URLs of peer boostd daemons to try on artifact-cache misses")
	peerTimeout := fs.Duration("peer-timeout", 5*time.Second, "per-peer artifact fetch deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "boostd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *inflight < 1 || *queue < 0 || *timeout <= 0 || *maxBody < 1 || *drain <= 0 || *gridCap < 1 {
		fmt.Fprintln(stderr, "boostd: -inflight/-max-body/-grid-cap must be >= 1, -queue >= 0, -timeout/-drain > 0")
		return 2
	}
	if *artifactMax < 1 || *peerTimeout <= 0 {
		fmt.Fprintln(stderr, "boostd: -artifact-max must be >= 1 and -peer-timeout > 0")
		return 2
	}

	srv, err := service.New(service.Config{
		MaxInFlight:      *inflight,
		QueueDepth:       *queue,
		RequestTimeout:   *timeout,
		MaxBodyBytes:     *maxBody,
		GridCellCap:      *gridCap,
		ArtifactDir:      *artifactDir,
		ArtifactMaxBytes: *artifactMax,
		Peers:            splitPeers(*peers),
		PeerTimeout:      *peerTimeout,
	})
	if err != nil {
		fmt.Fprintln(stderr, "boostd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "boostd:", err)
		return 1
	}
	// The resolved address line is machine-readable on purpose: tests and
	// scripts bind port 0 and scrape the port from here.
	fmt.Fprintf(stdout, "boostd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "boostd:", err)
		return 1
	case <-ctx.Done():
	}
	// A second signal during the drain kills the process the default way.
	stop()
	fmt.Fprintln(stdout, "boostd: signal received, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "boostd: drain incomplete:", err)
		return 1
	}
	// Flush in-flight artifact writes so a restart warm-starts from disk.
	persisted, cerr := srv.Close()
	if cerr != nil {
		fmt.Fprintln(stderr, "boostd: artifact store:", cerr)
		return 1
	}
	if *artifactDir != "" {
		fmt.Fprintf(stdout, "boostd: %d artifacts persisted\n", persisted)
	}
	fmt.Fprintln(stdout, "boostd: drained, exiting")
	return 0
}

// splitPeers parses the -peers flag: a comma-separated URL list with
// empty elements ignored.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
