package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's stdout while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bogus"},
		{"-inflight", "0"},
		{"-queue", "-1"},
		{"-timeout", "0s"},
		{"-max-body", "0"},
		{"-drain", "0s"},
		{"-grid-cap", "0"},
		{"stray-arg"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errw.String())
		}
	}
}

func TestListenFailure(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "definitely-not-an-address:xyz"}, &out, &errw); code != 1 {
		t.Fatalf("run with bad addr = %d, want 1 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "boostd:") {
		t.Errorf("stderr missing error line: %q", errw.String())
	}
}

// TestServeAndGracefulSIGTERM boots the real daemon on a free port,
// checks liveness and a real simulation, then delivers SIGTERM with a
// request in flight and expects a clean drain: the in-flight response
// arrives complete and run() exits 0.
func TestServeAndGracefulSIGTERM(t *testing.T) {
	var stdout syncBuffer
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &stdout, &stderr) }()

	addr := waitForAddr(t, &stdout)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// A real end-to-end simulation through the daemon.
	body := `{"asm": ".word 7\n.proc main\nentry:\n\tli v0, 0x10000\n\tlw v1, 0(v0)\n\tout v1\n\thalt\n", "model": "MinBoost3"}`
	resp, err = http.Post(base+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	simBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate = %d: %s", resp.StatusCode, simBody)
	}
	if !strings.Contains(string(simBody), `"cycles"`) {
		t.Fatalf("simulate body missing cycles: %s", simBody)
	}

	// Start an in-flight request (cold key, so it computes), then signal.
	inflight := make(chan error, 1)
	go func() {
		b := `{"workload": "grep", "model": "MinBoost3"}`
		resp, err := http.Post(base+"/v1/simulate", "application/json", strings.NewReader(b))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request status %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the handler
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-inflight:
		if err != nil {
			t.Errorf("in-flight request during drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if got := stdout.String(); !strings.Contains(got, "draining") || !strings.Contains(got, "drained") {
		t.Errorf("drain log lines missing from stdout: %q", got)
	}
}

func waitForAddr(t *testing.T, stdout *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "boostd: listening on "); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never printed its address; stdout: %q", stdout.String())
	return ""
}
