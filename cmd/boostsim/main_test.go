package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"stray argument", []string{"grep"}},
		{"rename without dynamic", []string{"-rename"}},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		if code := run(tc.args, &out, &errw); code != 2 {
			t.Errorf("%s: run(%v) = %d, want 2", tc.name, tc.args, code)
		}
		if errw.Len() == 0 {
			t.Errorf("%s: expected a usage message on stderr", tc.name)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "doom"},
		{"-model", "Pentium"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 1 {
			t.Errorf("run(%v) = %d, want 1 (stderr: %s)", args, code, errw.String())
		}
		if !strings.Contains(errw.String(), "boostsim:") {
			t.Errorf("run(%v): stderr missing prefixed error: %q", args, errw.String())
		}
	}
}

func TestSimulateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload simulation in -short mode")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-workload", "grep", "-model", "MinBoost3"}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, want := range []string{"workload     grep", "cycles", "speedup", "boosted", "prediction"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
