package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"stray argument", []string{"grep"}},
		{"rename without dynamic", []string{"-rename"}},
	}
	for _, tc := range cases {
		var out, errw bytes.Buffer
		if code := run(tc.args, &out, &errw); code != 2 {
			t.Errorf("%s: run(%v) = %d, want 2", tc.name, tc.args, code)
		}
		if errw.Len() == 0 {
			t.Errorf("%s: expected a usage message on stderr", tc.name)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "doom"},
		{"-model", "Pentium"},
	} {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 1 {
			t.Errorf("run(%v) = %d, want 1 (stderr: %s)", args, code, errw.String())
		}
		if !strings.Contains(errw.String(), "boostsim:") {
			t.Errorf("run(%v): stderr missing prefixed error: %q", args, errw.String())
		}
	}
}

// TestProfileFlags: -cpuprofile/-memprofile write non-empty pprof files
// on a successful run, and an uncreatable profile path fails up front
// with exit code 1 before any simulation work.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload simulation in -short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errw bytes.Buffer
	code := run([]string{"-workload", "grep", "-model", "MinBoost3",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errw)
	if code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestProfilePathErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "no", "such", "dir", "cpu.pprof")
	var out, errw bytes.Buffer
	if code := run([]string{"-cpuprofile", bad}, &out, &errw); code != 1 {
		t.Errorf("bad -cpuprofile path: run = %d, want 1 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "boostsim:") {
		t.Errorf("stderr missing prefixed error: %q", errw.String())
	}
}

func TestSimulateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload simulation in -short mode")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-workload", "grep", "-model", "MinBoost3"}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, want := range []string{"workload     grep", "cycles", "speedup", "boosted", "prediction"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
