// Command boostsim compiles one of the benchmark workloads for a chosen
// machine model and simulates it, reporting cycles, speedup over the
// scalar R2000 baseline, and speculation statistics.
//
// Usage:
//
//	boostsim -workload grep -model MinBoost3
//	boostsim -workload xlisp -model Boost1 -inf
//	boostsim -workload espresso -dynamic -rename
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"boosting"
)

func main() {
	workload := flag.String("workload", "grep", "workload name: "+strings.Join(boosting.Workloads(), ", "))
	model := flag.String("model", "MinBoost3", "machine model: R2000, NoBoost, Squashing, Boost1, MinBoost3, Boost7")
	local := flag.Bool("local", false, "restrict scheduling to basic blocks")
	inf := flag.Bool("inf", false, "infinite register model (skip register allocation)")
	dynamic := flag.Bool("dynamic", false, "simulate the dynamically-scheduled machine instead")
	rename := flag.Bool("rename", false, "enable register renaming (dynamic machine only)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "boostsim:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []boosting.Option
	if *local {
		opts = append(opts, boosting.WithLocalOnly())
	}
	if *inf {
		opts = append(opts, boosting.WithInfiniteRegisters())
	}
	p := boosting.NewPipeline(opts...)

	if *dynamic {
		c, err := p.Compile(ctx, *workload)
		if err != nil {
			fail(err)
		}
		res, err := p.SimulateDynamic(ctx, c, *rename)
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload   %s\n", *workload)
		fmt.Printf("machine    dynamic scheduler (renaming=%v)\n", *rename)
		fmt.Printf("cycles     %d\n", res.Cycles)
		fmt.Printf("scalar     %d\n", res.ScalarCycles)
		fmt.Printf("speedup    %.2fx\n", res.Speedup)
		fmt.Printf("mispredict %d\n", res.Mispredicts)
		return
	}

	m, err := boosting.ModelByName(*model)
	if err != nil {
		fail(err)
	}
	c, err := p.Compile(ctx, *workload)
	if err != nil {
		fail(err)
	}
	res, err := p.Simulate(ctx, c, m)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload     %s\n", *workload)
	fmt.Printf("machine      %s (local=%v, infinite-regs=%v)\n", m, *local, *inf)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("scalar       %d\n", res.ScalarCycles)
	fmt.Printf("speedup      %.2fx\n", res.Speedup)
	fmt.Printf("insts        %d (IPC %.2f)\n", res.Insts, float64(res.Insts)/float64(res.Cycles))
	fmt.Printf("boosted      %d executed, %d squashed\n", res.BoostedExec, res.Squashed)
	fmt.Printf("prediction   %.1f%%\n", 100*res.PredictionAccuracy)
	fmt.Printf("object size  %.2fx original\n", res.ObjectGrowth)
}
