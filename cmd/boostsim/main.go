// Command boostsim compiles one of the benchmark workloads for a chosen
// machine model and simulates it, reporting cycles, speedup over the
// scalar R2000 baseline, and speculation statistics.
//
// Usage:
//
//	boostsim -workload grep -model MinBoost3
//	boostsim -workload xlisp -model Boost1 -inf
//	boostsim -workload espresso -dynamic -rename
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"boosting"
	"boosting/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body. Exit codes: 0 success, 1 pipeline or
// simulation failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("boostsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "grep", "workload name: "+strings.Join(boosting.Workloads(), ", "))
	model := fs.String("model", "MinBoost3", "machine model: R2000, NoBoost, Squashing, Boost1, MinBoost3, Boost7")
	local := fs.Bool("local", false, "restrict scheduling to basic blocks")
	inf := fs.Bool("inf", false, "infinite register model (skip register allocation)")
	dynamic := fs.Bool("dynamic", false, "simulate the dynamically-scheduled machine instead")
	rename := fs.Bool("rename", false, "enable register renaming (dynamic machine only)")
	engineName := fs.String("engine", "fast", `simulator engine: "fast" (pre-decoded core) or "legacy"`)
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "boostsim: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *rename && !*dynamic {
		fmt.Fprintln(stderr, "boostsim: -rename applies to the dynamic machine only (add -dynamic)")
		return 2
	}
	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "boostsim:", err)
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "boostsim:", err)
		return 1
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile, stderr)
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []boosting.Option
	if *local {
		opts = append(opts, boosting.WithLocalOnly())
	}
	if *inf {
		opts = append(opts, boosting.WithInfiniteRegisters())
	}
	opts = append(opts, boosting.WithEngine(engine))
	p := boosting.NewPipeline(opts...)

	if *dynamic {
		c, err := p.Compile(ctx, *workload)
		if err != nil {
			return fail(err)
		}
		res, err := p.SimulateDynamic(ctx, c, *rename)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "workload   %s\n", *workload)
		fmt.Fprintf(stdout, "machine    dynamic scheduler (renaming=%v)\n", *rename)
		fmt.Fprintf(stdout, "cycles     %d\n", res.Cycles)
		fmt.Fprintf(stdout, "scalar     %d\n", res.ScalarCycles)
		fmt.Fprintf(stdout, "speedup    %.2fx\n", res.Speedup)
		fmt.Fprintf(stdout, "mispredict %d\n", res.Mispredicts)
		return 0
	}

	m, err := boosting.ModelByName(*model)
	if err != nil {
		return fail(err)
	}
	c, err := p.Compile(ctx, *workload)
	if err != nil {
		return fail(err)
	}
	res, err := p.Simulate(ctx, c, m)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "workload     %s\n", *workload)
	fmt.Fprintf(stdout, "machine      %s (local=%v, infinite-regs=%v)\n", m, *local, *inf)
	fmt.Fprintf(stdout, "engine       %s\n", res.Engine)
	fmt.Fprintf(stdout, "cycles       %d\n", res.Cycles)
	fmt.Fprintf(stdout, "scalar       %d\n", res.ScalarCycles)
	fmt.Fprintf(stdout, "speedup      %.2fx\n", res.Speedup)
	fmt.Fprintf(stdout, "insts        %d (IPC %.2f)\n", res.Insts, float64(res.Insts)/float64(res.Cycles))
	fmt.Fprintf(stdout, "boosted      %d executed, %d squashed\n", res.BoostedExec, res.Squashed)
	fmt.Fprintf(stdout, "prediction   %.1f%%\n", 100*res.PredictionAccuracy)
	fmt.Fprintf(stdout, "object size  %.2fx original\n", res.ObjectGrowth)
	return 0
}

// startProfiles arms the optional CPU and heap profiles. The returned
// stop function finishes the CPU profile and snapshots the heap; heap
// write failures at exit are reported to stderr without changing the
// exit code, since the simulation itself already succeeded.
func startProfiles(cpu, mem string, stderr io.Writer) (stop func(), err error) {
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(stderr, "boostsim:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "boostsim:", err)
		}
	}, nil
}
