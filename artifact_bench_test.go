package boosting_test

// Artifact warm-start benchmarks: how long until a pipeline can serve a
// compiled workload, starting cold (full build), from a disk artifact
// store, and from a boostd peer. Writes BENCH_artifact.json and gates
// the point of the subsystem: a disk-warm start must be at least 5×
// faster than a cold compile.
//
//	make bench-artifact    rewrite BENCH_artifact.json

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"boosting"
	"boosting/internal/artifact"
	"boosting/internal/machine"
)

// artifactBenchPhase is one start mode's latency distribution.
type artifactBenchPhase struct {
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

type artifactBenchFile struct {
	GeneratedBy string `json:"generated_by"`
	Workload    string `json:"workload"`
	Iterations  int    `json:"iterations"`
	// ColdCompile is a full build (workload construction, register
	// allocation, profiling, reference run); DiskWarm and PeerWarm decode
	// an artifact instead.
	ColdCompile artifactBenchPhase `json:"cold_compile"`
	DiskWarm    artifactBenchPhase `json:"disk_warm"`
	PeerWarm    artifactBenchPhase `json:"peer_warm"`
	// DiskSpeedupP50 is cold p50 over disk-warm p50 — gated ≥ 5.
	DiskSpeedupP50 float64 `json:"disk_speedup_p50"`
	PeerSpeedupP50 float64 `json:"peer_speedup_p50"`
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func summarize(samples []float64) artifactBenchPhase {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return artifactBenchPhase{P50Ns: percentile(s, 0.50), P99Ns: percentile(s, 0.99)}
}

// TestWriteArtifactBenchJSON measures the three start modes and writes
// BENCH_artifact.json (path in ARTIFACT_BENCH_JSON; skipped when unset
// so `go test ./...` stays quiet). It fails if a disk-warm start is not
// at least 5× faster than a cold compile at the median — the disk store
// exists to skip compilation, and a baseline that lost that property
// cannot be committed.
func TestWriteArtifactBenchJSON(t *testing.T) {
	out := os.Getenv("ARTIFACT_BENCH_JSON")
	if out == "" {
		t.Skip("set ARTIFACT_BENCH_JSON=path to write the artifact benchmark file")
	}
	const iterations = 15
	ctx := context.Background()
	workload := boosting.WorkloadGrep
	model := machine.MinBoost3()
	key := "compile|" + workload + "|alloc=true"

	// Seed a populated store: one full compile + simulate so the stored
	// artifact carries the model's schedule.
	seedDir := t.TempDir()
	seedStore, err := artifact.OpenStore(seedDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	seedCache := artifact.NewCache(seedStore, nil)
	seedPipe := boosting.NewPipeline(boosting.WithArtifactCache(seedCache))
	seeded, err := seedPipe.Compile(ctx, workload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedPipe.Simulate(ctx, seeded, model); err != nil {
		t.Fatal(err)
	}
	encoded, err := seeded.Artifact().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedCache.Close(); err != nil {
		t.Fatal(err)
	}

	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/artifact/"+key {
			w.Write(encoded)
			return
		}
		http.NotFound(w, r)
	}))
	defer peer.Close()

	// timeCompile measures one pipeline's time-to-compiled; the cache (or
	// its absence) decides which path that takes.
	timeCompile := func(ac boosting.ArtifactCache, wantSource string) float64 {
		var opts []boosting.Option
		if ac != nil {
			opts = append(opts, boosting.WithArtifactCache(ac))
		}
		p := boosting.NewPipeline(opts...)
		start := time.Now()
		c, err := p.Compile(ctx, workload)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if c.Source() != wantSource {
			t.Fatalf("compile source = %q, want %q", c.Source(), wantSource)
		}
		return float64(elapsed.Nanoseconds())
	}

	var cold, diskWarm, peerWarm []float64
	for i := 0; i < iterations; i++ {
		cold = append(cold, timeCompile(nil, "compile"))

		store, err := artifact.OpenStore(seedDir, 0)
		if err != nil {
			t.Fatal(err)
		}
		dc := artifact.NewCache(store, nil)
		diskWarm = append(diskWarm, timeCompile(dc, "disk"))
		if _, err := dc.Close(); err != nil {
			t.Fatal(err)
		}

		// Peer-warm: an empty local store, the artifact only on the peer.
		emptyStore, err := artifact.OpenStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		pc := artifact.NewCache(emptyStore, artifact.NewPeerClient([]string{peer.URL}, 5*time.Second))
		peerWarm = append(peerWarm, timeCompile(pc, "peer"))
		if _, err := pc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	file := artifactBenchFile{
		GeneratedBy: "go test -run TestWriteArtifactBenchJSON . (make bench-artifact)",
		Workload:    workload,
		Iterations:  iterations,
		ColdCompile: summarize(cold),
		DiskWarm:    summarize(diskWarm),
		PeerWarm:    summarize(peerWarm),
	}
	file.DiskSpeedupP50 = file.ColdCompile.P50Ns / file.DiskWarm.P50Ns
	file.PeerSpeedupP50 = file.ColdCompile.P50Ns / file.PeerWarm.P50Ns
	t.Logf("cold compile: p50 %.3fms p99 %.3fms", file.ColdCompile.P50Ns/1e6, file.ColdCompile.P99Ns/1e6)
	t.Logf("disk warm:    p50 %.3fms p99 %.3fms (%.1fx)", file.DiskWarm.P50Ns/1e6, file.DiskWarm.P99Ns/1e6, file.DiskSpeedupP50)
	t.Logf("peer warm:    p50 %.3fms p99 %.3fms (%.1fx)", file.PeerWarm.P50Ns/1e6, file.PeerWarm.P99Ns/1e6, file.PeerSpeedupP50)

	if file.DiskWarm.P50Ns*5 > file.ColdCompile.P50Ns {
		t.Errorf("disk-warm start is only %.2fx faster than a cold compile (want >= 5x): warm p50 %.3fms, cold p50 %.3fms",
			file.DiskSpeedupP50, file.DiskWarm.P50Ns/1e6, file.ColdCompile.P50Ns/1e6)
	}

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
