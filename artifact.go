package boosting

import (
	"context"
	"fmt"
	"sort"

	"boosting/internal/artifact"
	"boosting/internal/machine"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// Artifact is a serializable compiled workload: the compiled test
// program, its reference-run observables, the compile report, the scalar
// baseline, and any scheduled variants (one per machine model ×
// scheduler-option combination). Encode/Decode give it a versioned,
// checksummed binary form that survives processes and machines — a warm
// start decodes an artifact instead of compiling. An artifact shares
// storage with the Compiled it came from; treat its program as read-only.
//
// See docs/ARTIFACTS.md for the wire layout and compatibility policy.
type Artifact = artifact.Artifact

// DecodeArtifact deserializes an encoded artifact, rejecting corrupt
// input, other encoding versions, and artifacts built against a
// different instruction-set definition with typed errors — never a
// panic.
func DecodeArtifact(data []byte) (*Artifact, error) {
	return artifact.Decode(data)
}

// ArtifactCache is a pluggable artifact store the pipeline consults
// before compiling and writes through after. Get returns the artifact
// for a cache key plus the name of the tier that served it ("disk",
// "peer", ...), or (nil, "", nil) on a miss; a cache must treat its own
// failures as misses, because compiling is always a safe fallback.
// Implementations must be safe for concurrent use. The canonical
// implementation is internal/artifact.Cache (disk store + boostd peer
// fetch), installed with WithArtifactCache.
type ArtifactCache interface {
	Get(ctx context.Context, key string) (*Artifact, string, error)
	Put(ctx context.Context, key string, a *Artifact) error
}

// compileKey is the cache identity of a compiled artifact — the same
// (workload × register-allocation mode) key the compile memo's
// singleflight dedup uses, so memo entries, disk files and peer URLs all
// name the same thing.
func compileKey(workload string, alloc bool) string {
	return fmt.Sprintf("compile|%s|alloc=%v", workload, alloc)
}

// Artifact snapshots the compiled program, its reference run and every
// schedule recorded so far into a serializable artifact.
func (c *Compiled) Artifact() *Artifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := &artifact.Artifact{
		Workload:          c.Workload,
		InfiniteRegisters: c.InfiniteRegisters,
		Program:           c.master,
		Ref: artifact.RefResult{
			Out:      c.ref.Out,
			Insts:    c.ref.Insts,
			Branches: c.ref.Branches,
			Taken:    c.ref.Taken,
			MemHash:  c.ref.MemHash,
		},
		Accuracy:     c.acc,
		ScalarCycles: c.scalarCyc,
		Stats:        c.stats,
	}
	for key, v := range c.variants {
		a.Variants = append(a.Variants, &artifact.Variant{Key: key, Sched: v.sp, Stats: v.stats})
	}
	sortVariants(a.Variants)
	return a
}

// CompileFromArtifact installs a decoded artifact as the pipeline's
// compiled program for its workload, under the same memoization identity
// Compile uses. Subsequent Simulate calls reuse the artifact's recorded
// schedules where they match and schedule fresh variants otherwise. If
// the workload is already compiled (or installed) in this pipeline, the
// existing entry wins and is returned.
func (p *Pipeline) CompileFromArtifact(ctx context.Context, a *Artifact) (*Compiled, error) {
	if a == nil || a.Program == nil {
		return nil, fmt.Errorf("boosting: nil artifact")
	}
	key := compileKey(a.Workload, !a.InfiniteRegisters)
	return p.compiles.Do(ctx, key, func() (*Compiled, error) {
		return compiledFromArtifact(a, "artifact"), nil
	})
}

// compiledFromArtifact adapts a decoded artifact into the pipeline's
// in-memory compiled form, with source recording which tier it came
// from.
func compiledFromArtifact(a *artifact.Artifact, source string) *Compiled {
	w, _ := workloads.ByName(a.Workload)
	c := &Compiled{
		Workload:          a.Workload,
		InfiniteRegisters: a.InfiniteRegisters,
		w:                 w,
		master:            a.Program,
		ref: &sim.Result{
			Out:      a.Ref.Out,
			Insts:    a.Ref.Insts,
			Branches: a.Ref.Branches,
			Taken:    a.Ref.Taken,
			MemHash:  a.Ref.MemHash,
		},
		acc:       a.Accuracy,
		stats:     a.Stats,
		source:    source,
		scalarCyc: a.ScalarCycles,
	}
	for _, v := range a.Variants {
		c.addVariant(v.Key, v.Sched, v.Stats)
	}
	return c
}

// schedVariant is one recorded schedule of a compiled program.
type schedVariant struct {
	sp    *machine.SchedProgram
	stats *CompileStats
}

// Source reports where the compiled program came from: "compile" for a
// local build, "disk" or "peer" for an artifact-cache hit, "artifact"
// for CompileFromArtifact.
func (c *Compiled) Source() string {
	if c.source == "" {
		return "compile"
	}
	return c.source
}

// variant returns the recorded schedule for a variant key, if any.
func (c *Compiled) variant(key string) (*machine.SchedProgram, *CompileStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.variants[key]; ok {
		return v.sp, v.stats
	}
	return nil, nil
}

// addVariant records a schedule under its variant key.
func (c *Compiled) addVariant(key string, sp *machine.SchedProgram, stats *CompileStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.variants == nil {
		c.variants = map[string]*schedVariant{}
	}
	c.variants[key] = &schedVariant{sp: sp, stats: stats}
}

// scalarHint returns the memoized scalar baseline carried by the
// compiled program (0 = unknown).
func (c *Compiled) scalarHint() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scalarCyc
}

// setScalarCycles records the scalar baseline, reporting whether the
// value changed (and the artifact is worth re-saving).
func (c *Compiled) setScalarCycles(v int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scalarCyc == v {
		return false
	}
	c.scalarCyc = v
	return true
}

// saveArtifact writes the compiled program's current state through the
// configured artifact cache. Failures are deliberately dropped: the
// cache is an accelerator, never a correctness dependency.
func (p *Pipeline) saveArtifact(ctx context.Context, cfg config, c *Compiled) {
	if cfg.artifacts == nil {
		return
	}
	_ = cfg.artifacts.Put(ctx, compileKey(c.Workload, !c.InfiniteRegisters), c.Artifact())
}

func sortVariants(vs []*artifact.Variant) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Key < vs[j].Key })
}
