package boosting

import (
	"runtime"

	"boosting/internal/core"
	"boosting/internal/memhier"
	"boosting/internal/sim"
)

// Option is a functional option for the Pipeline. Options passed to
// NewPipeline become the pipeline's defaults; options passed to an
// individual Compile/Simulate/Run call are layered on top of those
// defaults for that call only. New ablation knobs can be added as new
// Option constructors without ever breaking existing callers.
type Option func(*config)

// config is the resolved option set.
type config struct {
	core        core.Options
	infiniteReg bool
	parallelism int
	engine      sim.Engine
	verifyEach  bool
	artifacts   ArtifactCache
	mem         *memhier.Config
}

// apply layers opts on top of a copy of the receiver.
func (c config) apply(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) workers() int {
	if c.parallelism > 0 {
		return c.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// WithLocalOnly restricts scheduling to basic blocks (no global code
// motion) — the paper's "basic block scheduling" bars and the scalar
// baseline.
func WithLocalOnly() Option {
	return func(c *config) { c.core.LocalOnly = true }
}

// WithInfiniteRegisters skips register allocation and schedules the
// virtual-register program directly (the paper's upper bars).
func WithInfiniteRegisters() Option {
	return func(c *config) { c.infiniteReg = true }
}

// WithoutEquivalence disables the control/data-equivalence shortcut,
// forcing duplication-based bookkeeping everywhere (scheduler ablation).
func WithoutEquivalence() Option {
	return func(c *config) { c.core.DisableEquivalence = true }
}

// WithoutDisambiguation builds maximally conservative memory dependences
// (scheduler ablation).
func WithoutDisambiguation() Option {
	return func(c *config) { c.core.NoDisambiguation = true }
}

// WithMaxTraceBlocks bounds trace length during trace selection
// (0 = the scheduler's default of 32).
func WithMaxTraceBlocks(n int) Option {
	return func(c *config) { c.core.MaxTraceBlocks = n }
}

// WithParallelism bounds the number of concurrently simulated cells in
// Pipeline.Grid (<= 0 means GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithEngine selects the cycle-simulator engine. The default
// (sim.EngineFast) is the pre-decoded allocation-free core;
// sim.EngineLegacy forces the original interpretive executor. Both
// produce byte-identical results — the option exists as an escape hatch
// and for differential testing.
func WithEngine(e sim.Engine) Option {
	return func(c *config) { c.engine = e }
}

// WithLegacyEngine forces the original interpretive executor; shorthand
// for WithEngine(sim.EngineLegacy).
func WithLegacyEngine() Option { return WithEngine(sim.EngineLegacy) }

// WithArtifactCache installs a persistent artifact cache. Compile
// consults it before building (a hit skips compilation entirely) and the
// pipeline writes freshly compiled programs, new schedules and the
// scalar baseline through it. The canonical implementation is
// internal/artifact.Cache: a content-addressed disk store, optionally
// backed by boostd peer fetch.
func WithArtifactCache(ac ArtifactCache) Option {
	return func(c *config) { c.artifacts = ac }
}

// WithMemHier simulates runs against a finite memory hierarchy
// (internal/memhier: L1/L2 caches, MSHRs, a write buffer and optional
// prefetching). The hierarchy perturbs timing only — Cycles, stall
// counts and Result.Mem statistics change, while architectural results
// (register state, store stream, observable output) stay byte-identical
// to the perfect-memory run. The scalar baseline used for Speedup is
// re-measured under the same hierarchy so the ratio compares
// like-for-like. Use DefaultMemConfig for the stock configuration.
func WithMemHier(cfg MemConfig) Option {
	return func(c *config) { c.mem = &cfg }
}

// WithPerfectMemory removes any configured memory hierarchy (every
// access is single-cycle) — the paper's idealized memory model and the
// pipeline default. It exists to override a pipeline-level WithMemHier
// for an individual call.
func WithPerfectMemory() Option {
	return func(c *config) { c.mem = nil }
}

// WithoutBoostedLoads forbids the scheduler from boosting loads above
// branches (stores and ALU ops still boost). Under a finite memory
// hierarchy a speculative load can stall the machine on a cache miss
// whose work is later squashed; this knob isolates that cost in the
// memory-hierarchy ablation.
func WithoutBoostedLoads() Option {
	return func(c *config) { c.core.NoBoostedLoads = true }
}

// WithVerifyEach runs the prog verifier between compile passes,
// attributing any broken CFG invariant to the pass that introduced it
// (debugging aid; boostcc -verify-each).
func WithVerifyEach() Option {
	return func(c *config) { c.verifyEach = true }
}

// MemConfig configures the simulated memory hierarchy (WithMemHier):
// per-level cache geometry and replacement policy, L2 and memory
// latencies, MSHR and write-buffer depth, and the prefetcher. It is an
// alias of the internal memhier schema, following the precedent of
// machine.Model being exposed directly.
type MemConfig = memhier.Config

// MemCacheConfig is the geometry of one cache level of a MemConfig.
type MemCacheConfig = memhier.CacheConfig

// MemStats reports one run's memory-hierarchy activity (hits, misses,
// MSHR merges and stalls, prefetch counters); see Result.Mem.
type MemStats = memhier.Stats

// DefaultMemConfig returns the stock hierarchy: 8 KiB direct-mapped L1
// (16-byte lines), 32 KiB 4-way L2 (32-byte lines), 6-cycle L2 and
// 24-cycle memory latency, 4 MSHRs, a 4-entry write buffer, and no
// prefetching.
func DefaultMemConfig() MemConfig { return memhier.Default() }

// SingleLevelMemConfig returns a hierarchy with one blocking
// direct-mapped-or-associative cache in front of memory (no L2, no
// MSHRs, no write buffer): every miss stalls for missPenalty cycles.
// This reproduces the simple data-cache model earlier versions exposed.
func SingleLevelMemConfig(sets, ways, lineBytes int, missPenalty int64) MemConfig {
	return memhier.SingleLevel(sets, ways, lineBytes, missPenalty)
}

// Ablation is one named scheduler-ablation bundle: a baseline or a
// configuration with one optimization disabled (or one resource
// stressed). The differential-testing oracle and the experiment grids
// iterate this list so that every ablation the scheduler supports is
// exercised by both.
type Ablation struct {
	// Name is a stable identifier ("baseline", "no-equiv", ...).
	Name string
	// Opts configures a Pipeline call for this ablation.
	Opts []Option
}

// Ablations enumerates the supported scheduler ablations, baseline
// first. The list is the public face of the core scheduler's option
// set: adding a scheduler knob means adding a constructor above and an
// entry here, and every ablation-sweeping consumer picks it up.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "baseline"},
		{Name: "no-equiv", Opts: []Option{WithoutEquivalence()}},
		{Name: "no-disamb", Opts: []Option{WithoutDisambiguation()}},
		{Name: "short-traces", Opts: []Option{WithMaxTraceBlocks(2)}},
		{Name: "local-only", Opts: []Option{WithLocalOnly()}},
	}
}

// Options controls the compilation pipeline.
//
// Deprecated: Options is the legacy knob struct kept for
// CompileAndRun/RunDynamic compatibility. New code should use the
// Pipeline API with functional options (WithLocalOnly,
// WithInfiniteRegisters, WithoutEquivalence, WithoutDisambiguation, ...),
// which extend to new ablations without breaking callers.
type Options struct {
	// LocalOnly restricts scheduling to basic blocks (no global motion).
	LocalOnly bool
	// InfiniteRegisters skips register allocation and schedules the
	// virtual-register program directly (the paper's upper bars).
	InfiniteRegisters bool
	// DisableEquivalence and NoDisambiguation are scheduler ablations.
	DisableEquivalence bool
	NoDisambiguation   bool
}

// asOpts bridges the legacy struct to functional options.
func (o Options) asOpts() []Option {
	var opts []Option
	if o.LocalOnly {
		opts = append(opts, WithLocalOnly())
	}
	if o.InfiniteRegisters {
		opts = append(opts, WithInfiniteRegisters())
	}
	if o.DisableEquivalence {
		opts = append(opts, WithoutEquivalence())
	}
	if o.NoDisambiguation {
		opts = append(opts, WithoutDisambiguation())
	}
	return opts
}
