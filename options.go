package boosting

import (
	"runtime"

	"boosting/internal/core"
	"boosting/internal/sim"
)

// Option is a functional option for the Pipeline. Options passed to
// NewPipeline become the pipeline's defaults; options passed to an
// individual Compile/Simulate/Run call are layered on top of those
// defaults for that call only. New ablation knobs can be added as new
// Option constructors without ever breaking existing callers.
type Option func(*config)

// config is the resolved option set.
type config struct {
	core        core.Options
	infiniteReg bool
	parallelism int
	engine      sim.Engine
	verifyEach  bool
	artifacts   ArtifactCache
}

// apply layers opts on top of a copy of the receiver.
func (c config) apply(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) workers() int {
	if c.parallelism > 0 {
		return c.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// WithLocalOnly restricts scheduling to basic blocks (no global code
// motion) — the paper's "basic block scheduling" bars and the scalar
// baseline.
func WithLocalOnly() Option {
	return func(c *config) { c.core.LocalOnly = true }
}

// WithInfiniteRegisters skips register allocation and schedules the
// virtual-register program directly (the paper's upper bars).
func WithInfiniteRegisters() Option {
	return func(c *config) { c.infiniteReg = true }
}

// WithoutEquivalence disables the control/data-equivalence shortcut,
// forcing duplication-based bookkeeping everywhere (scheduler ablation).
func WithoutEquivalence() Option {
	return func(c *config) { c.core.DisableEquivalence = true }
}

// WithoutDisambiguation builds maximally conservative memory dependences
// (scheduler ablation).
func WithoutDisambiguation() Option {
	return func(c *config) { c.core.NoDisambiguation = true }
}

// WithMaxTraceBlocks bounds trace length during trace selection
// (0 = the scheduler's default of 32).
func WithMaxTraceBlocks(n int) Option {
	return func(c *config) { c.core.MaxTraceBlocks = n }
}

// WithParallelism bounds the number of concurrently simulated cells in
// Pipeline.Grid (<= 0 means GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithEngine selects the cycle-simulator engine. The default
// (sim.EngineFast) is the pre-decoded allocation-free core;
// sim.EngineLegacy forces the original interpretive executor. Both
// produce byte-identical results — the option exists as an escape hatch
// and for differential testing.
func WithEngine(e sim.Engine) Option {
	return func(c *config) { c.engine = e }
}

// WithLegacyEngine forces the original interpretive executor; shorthand
// for WithEngine(sim.EngineLegacy).
func WithLegacyEngine() Option { return WithEngine(sim.EngineLegacy) }

// WithArtifactCache installs a persistent artifact cache. Compile
// consults it before building (a hit skips compilation entirely) and the
// pipeline writes freshly compiled programs, new schedules and the
// scalar baseline through it. The canonical implementation is
// internal/artifact.Cache: a content-addressed disk store, optionally
// backed by boostd peer fetch.
func WithArtifactCache(ac ArtifactCache) Option {
	return func(c *config) { c.artifacts = ac }
}

// WithVerifyEach runs the prog verifier between compile passes,
// attributing any broken CFG invariant to the pass that introduced it
// (debugging aid; boostcc -verify-each).
func WithVerifyEach() Option {
	return func(c *config) { c.verifyEach = true }
}

// Ablation is one named scheduler-ablation bundle: a baseline or a
// configuration with one optimization disabled (or one resource
// stressed). The differential-testing oracle and the experiment grids
// iterate this list so that every ablation the scheduler supports is
// exercised by both.
type Ablation struct {
	// Name is a stable identifier ("baseline", "no-equiv", ...).
	Name string
	// Opts configures a Pipeline call for this ablation.
	Opts []Option
}

// Ablations enumerates the supported scheduler ablations, baseline
// first. The list is the public face of the core scheduler's option
// set: adding a scheduler knob means adding a constructor above and an
// entry here, and every ablation-sweeping consumer picks it up.
func Ablations() []Ablation {
	return []Ablation{
		{Name: "baseline"},
		{Name: "no-equiv", Opts: []Option{WithoutEquivalence()}},
		{Name: "no-disamb", Opts: []Option{WithoutDisambiguation()}},
		{Name: "short-traces", Opts: []Option{WithMaxTraceBlocks(2)}},
		{Name: "local-only", Opts: []Option{WithLocalOnly()}},
	}
}

// Options controls the compilation pipeline.
//
// Deprecated: Options is the legacy knob struct kept for
// CompileAndRun/RunDynamic compatibility. New code should use the
// Pipeline API with functional options (WithLocalOnly,
// WithInfiniteRegisters, WithoutEquivalence, WithoutDisambiguation, ...),
// which extend to new ablations without breaking callers.
type Options struct {
	// LocalOnly restricts scheduling to basic blocks (no global motion).
	LocalOnly bool
	// InfiniteRegisters skips register allocation and schedules the
	// virtual-register program directly (the paper's upper bars).
	InfiniteRegisters bool
	// DisableEquivalence and NoDisambiguation are scheduler ablations.
	DisableEquivalence bool
	NoDisambiguation   bool
}

// asOpts bridges the legacy struct to functional options.
func (o Options) asOpts() []Option {
	var opts []Option
	if o.LocalOnly {
		opts = append(opts, WithLocalOnly())
	}
	if o.InfiniteRegisters {
		opts = append(opts, WithInfiniteRegisters())
	}
	if o.DisableEquivalence {
		opts = append(opts, WithoutEquivalence())
	}
	if o.NoDisambiguation {
		opts = append(opts, WithoutDisambiguation())
	}
	return opts
}
