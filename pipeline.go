package boosting

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"boosting/internal/artifact"
	"boosting/internal/cache"
	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/memhier"
	"boosting/internal/passes"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// Pipeline is the staged, reusable form of the compile-and-simulate
// facade. It separates the two expensive phases —
//
//	Compile   build train/test pair → register-allocate → profile →
//	          transfer predictions (one artifact per workload ×
//	          register-allocation mode)
//	Simulate  clone → schedule for a machine model → execute → verify
//	          against the reference interpreter
//
// — and memoizes compiled artifacts and the scalar-R2000 baseline with
// singleflight deduplication, so one Pipeline can drive many Simulate
// calls (or a whole Grid) concurrently without ever rebuilding shared
// work. All methods are safe for concurrent use.
//
// A zero-cost entry point for one-off runs remains as CompileAndRun.
type Pipeline struct {
	base     config
	compiles *cache.Memo[*Compiled]
	scalars  *cache.Memo[int64]

	// schedPasses counts scheduler invocations (Simulate misses plus
	// scalar-baseline builds). Artifact-cache tests use it to prove a
	// warm start ran zero schedule passes.
	schedPasses atomic.Int64
}

// NewPipeline returns an empty pipeline. opts become the defaults for
// every stage call; per-call options are layered on top.
func NewPipeline(opts ...Option) *Pipeline {
	return &Pipeline{
		base:     config{}.apply(opts),
		compiles: cache.NewMemo[*Compiled](),
		scalars:  cache.NewMemo[int64](),
	}
}

// Compiled is an immutable compiled artifact: the test program of a
// workload with predictions transferred from its training profile,
// together with its reference-interpreter run. It is shared between
// Simulate calls — Program returns a private clone for callers that
// want to mutate or schedule it themselves.
type Compiled struct {
	// Workload is the workload name this artifact was built from.
	Workload string
	// InfiniteRegisters records whether register allocation was skipped.
	InfiniteRegisters bool

	w      *workloads.Workload
	master *prog.Program
	ref    *sim.Result
	acc    float64
	stats  *CompileStats

	// source records where the program came from ("compile", "disk",
	// "peer", "artifact"); see Source.
	source string

	// mu guards the accumulating state below. Everything above is
	// immutable after construction.
	mu sync.Mutex
	// scalarCyc memoizes the R2000 baseline (0 = not yet measured).
	scalarCyc int64
	// variants caches schedules by artifact.VariantKey so repeat
	// Simulate calls — and warm starts from a decoded artifact — skip
	// the scheduler.
	variants map[string]*schedVariant
}

// Program returns a private, mutation-safe clone of the compiled test
// program.
func (c *Compiled) Program() *prog.Program { return prog.Clone(c.master) }

// PredictionAccuracy is the static predictor's accuracy on the test
// input.
func (c *Compiled) PredictionAccuracy() float64 { return c.acc }

// CompileStats reports the per-pass timings of the artifact build
// (workload construction, register allocation, profiling, reference
// run). The artifact is memoized, so the report describes the build that
// actually ran, not the call that hit the cache.
func (c *Compiled) CompileStats() *CompileStats { return c.stats }

// Compile builds the named workload's train/test pair, register-
// allocates it (unless WithInfiniteRegisters), transfers branch
// predictions from the training profile, and runs the reference
// interpreter on the result. The artifact is memoized: concurrent and
// repeated Compile calls for the same (workload, register mode) share
// one build.
func (p *Pipeline) Compile(ctx context.Context, workload string, opts ...Option) (*Compiled, error) {
	cfg := p.base.apply(opts)
	alloc := !cfg.infiniteReg
	key := compileKey(workload, alloc)
	return p.compiles.Do(ctx, key, func() (*Compiled, error) {
		if cfg.artifacts != nil {
			a, source, err := cfg.artifacts.Get(ctx, key)
			if err == nil && a != nil && a.Workload == workload &&
				a.InfiniteRegisters == cfg.infiniteReg {
				return compiledFromArtifact(a, source), nil
			}
		}
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		pm := passes.NewManager()
		pm.VerifyEach = cfg.verifyEach
		var train, test *prog.Program
		err = pm.Run("build", func() error {
			train, test = w.BuildTrain(), w.BuildTest()
			return nil
		})
		if err == nil && alloc {
			err = pm.Run("regalloc", func() error {
				if _, err := regalloc.Allocate(train); err != nil {
					return fmt.Errorf("train: %w", err)
				}
				if _, err := regalloc.Allocate(test); err != nil {
					return fmt.Errorf("test: %w", err)
				}
				return nil
			}, train, test)
		}
		if err == nil {
			err = pm.Run("profile", func() error {
				if err := profile.Annotate(train); err != nil {
					return err
				}
				return profile.Transfer(train, test)
			}, train, test)
		}
		var ref *sim.Result
		if err == nil {
			err = pm.Run("reference-run", func() error {
				var rerr error
				ref, rerr = sim.Run(test, sim.RefConfig{})
				return rerr
			})
		}
		if err != nil {
			return nil, fmt.Errorf("boosting: %s: %w", workload, err)
		}
		acc, err := profile.Accuracy(test)
		if err != nil {
			return nil, err
		}
		c := &Compiled{
			Workload:          workload,
			InfiniteRegisters: cfg.infiniteReg,
			w:                 w,
			master:            test,
			ref:               ref,
			acc:               acc,
			stats:             pm.Stats(),
			source:            "compile",
		}
		p.saveArtifact(ctx, cfg, c)
		return c, nil
	})
}

// Simulate schedules the compiled artifact for the model (on a private
// clone), executes it on the machine simulator, verifies output and
// final memory against the reference interpreter, and reports cycles
// and speedup over the scalar R2000 baseline. If the compiled artifact
// already carries a schedule for this (model, options) variant — a
// repeat call, or a warm start from a decoded artifact — the scheduler
// is skipped entirely and the recorded schedule is executed.
func (p *Pipeline) Simulate(ctx context.Context, c *Compiled, model *machine.Model, opts ...Option) (*Result, error) {
	cfg := p.base.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("boosting: simulate %s on %s: %w", c.Workload, model, err)
	}
	vkey := artifact.VariantKey(model, cfg.core)
	sp, schedStats := c.variant(vkey)
	fresh := sp == nil
	if fresh {
		test := c.Program()
		pm := passes.NewManager()
		pm.VerifyEach = cfg.verifyEach
		var err error
		sp, err = pm.Schedule(test, model, cfg.core)
		if err != nil {
			return nil, err
		}
		p.schedPasses.Add(1)
		schedStats = pm.Stats()
	}
	if schedStats == nil {
		schedStats = &CompileStats{}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("boosting: simulate %s on %s: %w", c.Workload, model, err)
	}
	res, err := sim.Exec(sp, sim.ExecConfig{Engine: cfg.engine, Mem: cfg.mem})
	if err != nil {
		return nil, err
	}
	if err := verifyRun(c.ref, res.Out, res.MemHash); err != nil {
		return nil, fmt.Errorf("boosting: %s on %s: %w", c.Workload, model, err)
	}
	scalar, err := p.scalarCycles(ctx, c.Workload, c.scalarHint(), cfg.mem)
	if err != nil {
		return nil, err
	}
	// The scalar baseline is workload-global and computed under the
	// pipeline's base options; only record it on the artifact when the
	// base compile matches it (the standard, allocated, perfect-memory
	// configuration — a hierarchy-specific baseline must not poison the
	// artifact's hint).
	scalarChanged := cfg.mem == nil && !p.base.infiniteReg && c.setScalarCycles(scalar)
	if fresh {
		c.addVariant(vkey, sp, schedStats)
	}
	if fresh || scalarChanged {
		p.saveArtifact(ctx, cfg, c)
	}
	return &Result{
		Engine:             cfg.engine.String(),
		Compile:            schedStats,
		Cycles:             res.Cycles,
		ScalarCycles:       scalar,
		Speedup:            float64(scalar) / float64(res.Cycles),
		Insts:              res.Insts,
		BoostedExec:        res.BoostedExec,
		Squashed:           res.Squashed,
		MemStalls:          res.MemStalls,
		BoostedMemStalls:   res.BoostedMemStalls,
		SquashedMemStalls:  res.SquashedMemStalls,
		Mem:                res.Mem,
		PredictionAccuracy: c.acc,
		ObjectGrowth:       sp.ObjectGrowth(),
		Out:                res.Out,
	}, nil
}

// SimulateBatch is Simulate over N execution lanes of one schedule: the
// compiled artifact is scheduled (or fetched from its variant cache) and
// predecoded once, then every lane runs in a single lockstep
// sim.ExecBatch pass and is verified against the reference interpreter.
// Lane option sets may vary only execution-side knobs — WithEngine,
// WithMemHier / WithPerfectMemory — because all lanes share the schedule;
// a lane whose options would change the schedule variant (scheduler
// ablations, WithLocalOnly, ...) fails the whole batch, since its result
// could not equal a solo Simulate of those options. results[i]/errs[i]
// mirror Simulate(ctx, c, model, append(opts, lanes[i]...)...) slot for
// slot; err reports batch-level failures (scheduling, lane validation).
func (p *Pipeline) SimulateBatch(ctx context.Context, c *Compiled, model *machine.Model, lanes [][]Option, opts ...Option) (results []*Result, errs []error, err error) {
	base := p.base.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("boosting: simulate batch %s on %s: %w", c.Workload, model, err)
	}
	vkey := artifact.VariantKey(model, base.core)
	laneCfgs := make([]config, len(lanes))
	for i, lo := range lanes {
		lc := base.apply(lo)
		if lk := artifact.VariantKey(model, lc.core); lk != vkey {
			return nil, nil, fmt.Errorf(
				"boosting: simulate batch %s on %s: lane %d changes the schedule variant; lanes may only vary execution options (engine, memory hierarchy)",
				c.Workload, model, i)
		}
		laneCfgs[i] = lc
	}
	sp, schedStats := c.variant(vkey)
	fresh := sp == nil
	if fresh {
		test := c.Program()
		pm := passes.NewManager()
		pm.VerifyEach = base.verifyEach
		var serr error
		sp, serr = pm.Schedule(test, model, base.core)
		if serr != nil {
			return nil, nil, serr
		}
		p.schedPasses.Add(1)
		schedStats = pm.Stats()
	}
	if schedStats == nil {
		schedStats = &CompileStats{}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("boosting: simulate batch %s on %s: %w", c.Workload, model, err)
	}
	cfgs := make([]sim.ExecConfig, len(lanes))
	for i := range laneCfgs {
		cfgs[i] = sim.ExecConfig{Engine: laneCfgs[i].engine, Mem: laneCfgs[i].mem}
	}
	execRes, execErrs := sim.ExecBatch(sp, cfgs)

	results = make([]*Result, len(lanes))
	errs = make([]error, len(lanes))
	saveNeeded := fresh
	for i := range lanes {
		if execErrs[i] != nil {
			errs[i] = execErrs[i]
			continue
		}
		res := execRes[i]
		if verr := verifyRun(c.ref, res.Out, res.MemHash); verr != nil {
			errs[i] = fmt.Errorf("boosting: %s on %s: %w", c.Workload, model, verr)
			continue
		}
		scalar, serr := p.scalarCycles(ctx, c.Workload, c.scalarHint(), laneCfgs[i].mem)
		if serr != nil {
			errs[i] = serr
			continue
		}
		// Mirrors Simulate's artifact-hint policy: only the standard
		// perfect-memory, allocated configuration may record the baseline.
		if laneCfgs[i].mem == nil && !p.base.infiniteReg && c.setScalarCycles(scalar) {
			saveNeeded = true
		}
		results[i] = &Result{
			Engine:             laneCfgs[i].engine.String(),
			Compile:            schedStats,
			Cycles:             res.Cycles,
			ScalarCycles:       scalar,
			Speedup:            float64(scalar) / float64(res.Cycles),
			Insts:              res.Insts,
			BoostedExec:        res.BoostedExec,
			Squashed:           res.Squashed,
			MemStalls:          res.MemStalls,
			BoostedMemStalls:   res.BoostedMemStalls,
			SquashedMemStalls:  res.SquashedMemStalls,
			Mem:                res.Mem,
			PredictionAccuracy: c.acc,
			ObjectGrowth:       sp.ObjectGrowth(),
			Out:                res.Out,
		}
	}
	if fresh {
		c.addVariant(vkey, sp, schedStats)
	}
	if saveNeeded {
		p.saveArtifact(ctx, base, c)
	}
	return results, errs, nil
}

// SchedulePasses reports how many times this pipeline has invoked the
// scheduler (variant misses plus scalar-baseline builds). A fully warm
// artifact start keeps it at zero.
func (p *Pipeline) SchedulePasses() int64 { return p.schedPasses.Load() }

// SimulateDynamic runs the compiled artifact on the paper's
// dynamically-scheduled superscalar (30 reservation stations, 16-entry
// reorder buffer, 2048×4 BTB), with or without register renaming.
// WithMemHier applies here too: loads and stores then contend for the
// same finite hierarchy model the static engines use, and the scalar
// baseline is re-measured under it.
func (p *Pipeline) SimulateDynamic(ctx context.Context, c *Compiled, renaming bool, opts ...Option) (*DynamicResult, error) {
	pcfg := p.base.apply(opts)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("boosting: simulate %s dynamic: %w", c.Workload, err)
	}
	cfg := dynsched.Default()
	cfg.Renaming = renaming
	cfg.Mem = pcfg.mem
	res, err := dynsched.Simulate(c.Program(), cfg)
	if err != nil {
		return nil, err
	}
	if err := verifyRun(c.ref, res.Out, res.MemHash); err != nil {
		return nil, fmt.Errorf("boosting: %s dynamic: %w", c.Workload, err)
	}
	scalar, err := p.scalarCycles(ctx, c.Workload, c.scalarHint(), pcfg.mem)
	if err != nil {
		return nil, err
	}
	return &DynamicResult{
		Cycles:       res.Cycles,
		ScalarCycles: scalar,
		Speedup:      float64(scalar) / float64(res.Cycles),
		Mispredicts:  res.Mispredicts,
		MemStalls:    res.MemStalls,
		Mem:          res.Mem,
		Out:          res.Out,
	}, nil
}

// Run is Compile followed by Simulate.
func (p *Pipeline) Run(ctx context.Context, workload string, model *machine.Model, opts ...Option) (*Result, error) {
	c, err := p.Compile(ctx, workload, opts...)
	if err != nil {
		return nil, err
	}
	return p.Simulate(ctx, c, model, opts...)
}

// CacheStats reports the pipeline's artifact-cache activity: lookups
// served from the memoized compile/baseline stores versus lookups that
// ran the underlying computation. Servers exporting pipeline metrics
// (cmd/boostd's /metrics) read their gauges from here.
func (p *Pipeline) CacheStats() (hits, misses int64) {
	ch, cm := p.compiles.Stats()
	sh, sm := p.scalars.Stats()
	return ch + sh, cm + sm
}

// scalarCycles memoizes the R2000 baseline per workload. The memo key is
// engine-free on purpose: the engines are proven cycle-identical, so the
// baseline is shared across engine selections — but it is keyed by the
// memory hierarchy, because Speedup must compare like-for-like: a run
// against a finite hierarchy is measured against a scalar baseline
// suffering the same hierarchy. A positive hint — carried by a decoded
// artifact — resolves the baseline without building or scheduling
// anything, as long as the pipeline's base compile is the standard
// allocated, perfect-memory configuration the hint was measured under.
func (p *Pipeline) scalarCycles(ctx context.Context, workload string, hint int64, mem *memhier.Config) (int64, error) {
	key := "scalar|" + workload
	if mem != nil {
		key += "|mem=" + mem.Key()
	}
	return p.scalars.Do(ctx, key, func() (int64, error) {
		if hint > 0 && !p.base.infiniteReg && mem == nil {
			return hint, nil
		}
		c, err := p.Compile(ctx, workload)
		if err != nil {
			return 0, err
		}
		sp, err := core.Schedule(c.Program(), machine.Scalar(), core.Options{LocalOnly: true})
		if err != nil {
			return 0, err
		}
		p.schedPasses.Add(1)
		res, err := sim.Exec(sp, sim.ExecConfig{Mem: mem})
		if err != nil {
			return 0, err
		}
		if err := verifyRun(c.ref, res.Out, res.MemHash); err != nil {
			return 0, fmt.Errorf("boosting: %s scalar baseline: %w", workload, err)
		}
		return res.Cycles, nil
	})
}

// GridCell is one (workload, model, options) point of a batch run.
type GridCell struct {
	Workload string
	Model    *machine.Model
	Opts     []Option
	// Label tags the cell for reporting (for example an ablation name);
	// it does not affect execution.
	Label string
}

// AblationCells crosses workloads and models with every scheduler
// ablation from Ablations(), labelling each cell with the ablation
// name. Feed the result to Grid for a full ablation sweep.
func AblationCells(workloadNames []string, models []*machine.Model) []GridCell {
	var cells []GridCell
	for _, w := range workloadNames {
		for _, m := range models {
			for _, ab := range Ablations() {
				cells = append(cells, GridCell{
					Workload: w, Model: m, Opts: ab.Opts, Label: ab.Name,
				})
			}
		}
	}
	return cells
}

// GridResult pairs a cell with its outcome. Exactly one of Result/Err
// is set.
type GridResult struct {
	Cell   GridCell
	Result *Result
	Err    error
}

// Grid compiles and simulates every cell concurrently (bounded by
// WithParallelism, default GOMAXPROCS) and returns results in cell
// order regardless of completion order. Shared artifacts — compiled
// pairs, scalar baselines — are built exactly once across the whole
// grid. A failing cell records its error in its GridResult and does not
// stop the other cells; cancelling ctx stops the batch, and Grid then
// returns the first context error wrapped alongside the partial
// results.
func (p *Pipeline) Grid(ctx context.Context, cells []GridCell) ([]GridResult, error) {
	results := make([]GridResult, len(cells))
	for i, c := range cells {
		results[i].Cell = c
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	workers := p.base.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cell := cells[i]
				results[i].Result, results[i].Err = p.Run(ctx, cell.Workload, cell.Model, cell.Opts...)
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("boosting: grid aborted: %w", err)
	}
	return results, nil
}

// verifyRun compares a simulated run's observable output and final
// memory against the reference interpreter's.
func verifyRun(ref *sim.Result, out []uint32, memHash uint64) error {
	if len(out) != len(ref.Out) {
		return fmt.Errorf("verification failed: %d outputs, want %d", len(out), len(ref.Out))
	}
	for i := range out {
		if out[i] != ref.Out[i] {
			return fmt.Errorf("verification failed: out[%d] = %d, want %d", i, out[i], ref.Out[i])
		}
	}
	if memHash != ref.MemHash {
		return fmt.Errorf("verification failed: final memory differs")
	}
	return nil
}
