// Package boosting is a complete reproduction of Smith, Horowitz and Lam,
// "Efficient Superscalar Performance Through Boosting" (ASPLOS V, 1992):
// a trace-based global instruction scheduler with boosting — architectural
// support for general speculative execution in statically-scheduled
// superscalar processors — together with the machine models, simulators,
// benchmark workloads and experiment harness needed to regenerate every
// table and figure of the paper's evaluation.
//
// This package is the high-level facade. The full machinery lives in the
// internal packages:
//
//	internal/isa        MIPS-R2000-like instruction set with boost labels
//	internal/prog       program IR: basic blocks, CFG, builder, verifier
//	internal/dataflow   dominators, liveness, loops/regions, equivalence
//	internal/profile    branch profiling and static prediction
//	internal/ddg        trace data-dependence graphs
//	internal/regalloc   round-robin register allocation (+ spilling)
//	internal/core       the boosting trace scheduler (the contribution)
//	internal/machine    processor models and machine schedules
//	internal/sim        reference interpreter + boosting hardware simulator
//	internal/dynsched   dynamically-scheduled (Tomasulo/ROB/BTB) baseline
//	internal/workloads  the seven benchmark kernels
//	internal/hwcost     shadow register file hardware cost model
//	internal/experiments tables/figures harness
//
// # Quick start
//
//	cfg := boosting.Models().MinBoost3
//	res, err := boosting.CompileAndRun(boosting.WorkloadGrep, cfg, boosting.Options{})
//	// res.Cycles, res.Speedup (vs scalar R2000), res.Out ...
package boosting

import (
	"fmt"
	"strings"

	"boosting/internal/core"
	"boosting/internal/dynsched"
	"boosting/internal/machine"
	"boosting/internal/profile"
	"boosting/internal/prog"
	"boosting/internal/regalloc"
	"boosting/internal/sim"
	"boosting/internal/workloads"
)

// Workload names accepted by CompileAndRun and Workloads().
const (
	WorkloadAWK      = "awk"
	WorkloadCompress = "compress"
	WorkloadEqntott  = "eqntott"
	WorkloadEspresso = "espresso"
	WorkloadGrep     = "grep"
	WorkloadNroff    = "nroff"
	WorkloadXLisp    = "xlisp"
)

// Workloads returns the names of the benchmark set in the paper's order.
func Workloads() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	return out
}

// ModelSet bundles the processor configurations of the paper.
type ModelSet struct {
	Scalar    *machine.Model // single-issue MIPS R2000 baseline
	NoBoost   *machine.Model // 2-issue superscalar, no speculation hardware
	Squashing *machine.Model // squashing pipeline only (Option 3)
	Boost1    *machine.Model // one shadow register file + store buffer
	MinBoost3 *machine.Model // single shadow file, 3 levels, no store buffer
	Boost7    *machine.Model // full shadow structures, 7 levels
}

// Models returns fresh instances of every evaluated machine model.
func Models() ModelSet {
	return ModelSet{
		Scalar:    machine.Scalar(),
		NoBoost:   machine.NoBoost(),
		Squashing: machine.Squashing(),
		Boost1:    machine.Boost1(),
		MinBoost3: machine.MinBoost3(),
		Boost7:    machine.Boost7(),
	}
}

// Options controls the compilation pipeline.
type Options struct {
	// LocalOnly restricts scheduling to basic blocks (no global motion).
	LocalOnly bool
	// InfiniteRegisters skips register allocation and schedules the
	// virtual-register program directly (the paper's upper bars).
	InfiniteRegisters bool
	// DisableEquivalence and NoDisambiguation are scheduler ablations.
	DisableEquivalence bool
	NoDisambiguation   bool
}

// Result reports a compiled-and-simulated run.
type Result struct {
	// Cycles is the machine cycles consumed on the test input.
	Cycles int64
	// ScalarCycles is the R2000 baseline on the same input.
	ScalarCycles int64
	// Speedup is ScalarCycles/Cycles.
	Speedup float64
	// Insts counts useful instructions issued (including squashed
	// speculative work).
	Insts int64
	// BoostedExec and Squashed count speculative activity.
	BoostedExec int64
	Squashed    int64
	// PredictionAccuracy is the static predictor's accuracy on this run.
	PredictionAccuracy float64
	// ObjectGrowth is scheduled size (with recovery code) over original.
	ObjectGrowth float64
	// Out is the program's observable output (verified against the
	// reference interpreter before this Result is returned).
	Out []uint32
}

// CompileAndRun builds the named workload, profiles it on its training
// input, register-allocates (unless InfiniteRegisters), schedules it for
// the model, simulates the test input, verifies the run against the
// reference interpreter, and reports cycle counts and speedup over the
// scalar R2000 baseline.
func CompileAndRun(workload string, model *machine.Model, opts Options) (*Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}

	test, err := preparePair(w, !opts.InfiniteRegisters)
	if err != nil {
		return nil, err
	}
	ref, err := sim.Run(w.BuildTest(), sim.RefConfig{})
	if err != nil {
		return nil, fmt.Errorf("boosting: reference run: %w", err)
	}
	acc, err := profile.Accuracy(test)
	if err != nil {
		return nil, err
	}

	sp, err := core.Schedule(test, model, core.Options{
		LocalOnly:          opts.LocalOnly,
		DisableEquivalence: opts.DisableEquivalence,
		NoDisambiguation:   opts.NoDisambiguation,
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		return nil, err
	}
	if err := compareOut(ref.Out, res.Out); err != nil {
		return nil, fmt.Errorf("boosting: %s on %s: %w", workload, model, err)
	}

	scalar, err := scalarBaseline(w)
	if err != nil {
		return nil, err
	}
	return &Result{
		Cycles:             res.Cycles,
		ScalarCycles:       scalar,
		Speedup:            float64(scalar) / float64(res.Cycles),
		Insts:              res.Insts,
		BoostedExec:        res.BoostedExec,
		Squashed:           res.Squashed,
		PredictionAccuracy: acc,
		ObjectGrowth:       sp.ObjectGrowth(),
		Out:                res.Out,
	}, nil
}

// DynamicResult reports a run on the dynamically-scheduled machine.
type DynamicResult struct {
	Cycles       int64
	ScalarCycles int64
	Speedup      float64
	Mispredicts  int64
	Out          []uint32
}

// RunDynamic simulates the workload on the paper's dynamically-scheduled
// superscalar (30 reservation stations, 16-entry reorder buffer, 2048×4
// BTB), with or without register renaming.
func RunDynamic(workload string, renaming bool) (*DynamicResult, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	test, err := preparePair(w, true)
	if err != nil {
		return nil, err
	}
	cfg := dynsched.Default()
	cfg.Renaming = renaming
	res, err := dynsched.Simulate(test, cfg)
	if err != nil {
		return nil, err
	}
	scalar, err := scalarBaseline(w)
	if err != nil {
		return nil, err
	}
	return &DynamicResult{
		Cycles:       res.Cycles,
		ScalarCycles: scalar,
		Speedup:      float64(scalar) / float64(res.Cycles),
		Mispredicts:  res.Mispredicts,
		Out:          res.Out,
	}, nil
}

// preparePair builds the test program with predictions transferred from a
// training-input profile, optionally register-allocated first.
func preparePair(w *workloads.Workload, alloc bool) (*prog.Program, error) {
	train := w.BuildTrain()
	test := w.BuildTest()
	if alloc {
		if _, err := regalloc.Allocate(train); err != nil {
			return nil, err
		}
		if _, err := regalloc.Allocate(test); err != nil {
			return nil, err
		}
	}
	if err := profile.Annotate(train); err != nil {
		return nil, err
	}
	if err := profile.Transfer(train, test); err != nil {
		return nil, err
	}
	return test, nil
}

// scalarBaseline compiles and measures the R2000 baseline.
func scalarBaseline(w *workloads.Workload) (int64, error) {
	test, err := preparePair(w, true)
	if err != nil {
		return 0, err
	}
	sp, err := core.Schedule(test, machine.Scalar(), core.Options{LocalOnly: true})
	if err != nil {
		return 0, err
	}
	res, err := sim.Exec(sp, sim.ExecConfig{})
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

func compareOut(want, got []uint32) error {
	if len(want) != len(got) {
		return fmt.Errorf("output length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

// ModelByName resolves a machine-model name as used by the CLI tools:
// "R2000"/"scalar", "NoBoost"/"base", "Squashing"/"squash", "Boost1",
// "MinBoost3", "Boost7" (case-insensitive).
func ModelByName(name string) (*machine.Model, error) {
	ms := Models()
	switch strings.ToLower(name) {
	case "r2000", "scalar":
		return ms.Scalar, nil
	case "noboost", "base":
		return ms.NoBoost, nil
	case "squashing", "squash":
		return ms.Squashing, nil
	case "boost1":
		return ms.Boost1, nil
	case "minboost3":
		return ms.MinBoost3, nil
	case "boost7":
		return ms.Boost7, nil
	}
	return nil, fmt.Errorf("boosting: unknown model %q (want R2000, NoBoost, Squashing, Boost1, MinBoost3 or Boost7)", name)
}

// ScheduleListing compiles the workload for the model and returns the
// formatted machine schedule (cycles × issue slots, boosting labels,
// recovery sites) for inspection.
func ScheduleListing(workload string, model *machine.Model, opts Options) (string, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return "", err
	}
	test, err := preparePair(w, !opts.InfiniteRegisters)
	if err != nil {
		return "", err
	}
	sp, err := core.Schedule(test, model, core.Options{
		LocalOnly:          opts.LocalOnly,
		DisableEquivalence: opts.DisableEquivalence,
		NoDisambiguation:   opts.NoDisambiguation,
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, name := range test.Order {
		sb.WriteString(sp.Procs[name].Format())
	}
	return sb.String(), nil
}
