// Package boosting is a complete reproduction of Smith, Horowitz and Lam,
// "Efficient Superscalar Performance Through Boosting" (ASPLOS V, 1992):
// a trace-based global instruction scheduler with boosting — architectural
// support for general speculative execution in statically-scheduled
// superscalar processors — together with the machine models, simulators,
// benchmark workloads and experiment harness needed to regenerate every
// table and figure of the paper's evaluation.
//
// This package is the high-level facade. The full machinery lives in the
// internal packages:
//
//	internal/isa        MIPS-R2000-like instruction set with boost labels
//	internal/prog       program IR: basic blocks, CFG, builder, verifier
//	internal/dataflow   dominators, liveness, loops/regions, equivalence
//	internal/profile    branch profiling and static prediction
//	internal/ddg        trace data-dependence graphs
//	internal/regalloc   round-robin register allocation (+ spilling)
//	internal/core       the boosting trace scheduler (the contribution)
//	internal/machine    processor models and machine schedules
//	internal/sim        reference interpreter + boosting hardware simulator
//	internal/dynsched   dynamically-scheduled (Tomasulo/ROB/BTB) baseline
//	internal/workloads  the seven benchmark kernels
//	internal/hwcost     shadow register file hardware cost model
//	internal/memhier    configurable memory hierarchy: caches, MSHRs, prefetch
//	internal/cache      concurrency-safe memoization with singleflight
//	internal/artifact   serializable compile artifacts: codec, disk store, peer fetch
//	internal/experiments concurrent tables/figures harness
//
// # Quick start
//
// The staged Pipeline API compiles once and simulates many times, with
// every shared artifact memoized and every stage cancellable:
//
//	p := boosting.NewPipeline()
//	c, err := p.Compile(ctx, boosting.WorkloadGrep)
//	res, err := p.Simulate(ctx, c, boosting.Models().MinBoost3)
//	// res.Cycles, res.Speedup (vs scalar R2000), res.Out ...
//
// Ablations are functional options (boosting.WithLocalOnly,
// boosting.WithInfiniteRegisters, ...), and Pipeline.Grid runs a whole
// (workload × model × options) batch concurrently with deterministic
// result order. For one-off runs the legacy CompileAndRun wrapper still
// works.
package boosting

import (
	"context"
	"fmt"
	"strings"

	"boosting/internal/core"
	"boosting/internal/machine"
	"boosting/internal/passes"
	"boosting/internal/workloads"
)

// CompileStats is the structured per-pass report of one compile: every
// pass's name and wall time, with the "schedule" row expanded into the
// trace scheduler's stage rows (trace-select, ddg-build, list-schedule,
// recovery-emit) and carrying the full SchedulerStats payload. It is an
// alias of the internal pass-manager schema, following the precedent of
// machine.Model being exposed directly.
type CompileStats = passes.CompileStats

// PassStats is one row of a CompileStats report.
type PassStats = passes.PassStats

// SchedulerStats is the trace scheduler's counter set: traces formed,
// motions attempted/placed, rejections bucketed by reason, boosted
// instruction counts per level, compensation copies, recovery
// instructions, per-stage times and analysis-cache activity.
type SchedulerStats = core.Stats

// RejectReasons lists every motion-rejection bucket that can appear in
// SchedulerStats.Rejections.
func RejectReasons() []string { return core.RejectReasons() }

// Workload names accepted by Compile/CompileAndRun and Workloads().
const (
	WorkloadAWK      = "awk"
	WorkloadCompress = "compress"
	WorkloadEqntott  = "eqntott"
	WorkloadEspresso = "espresso"
	WorkloadGrep     = "grep"
	WorkloadNroff    = "nroff"
	WorkloadXLisp    = "xlisp"
)

// Workloads returns the names of the benchmark set in the paper's order.
func Workloads() []string {
	var out []string
	for _, w := range workloads.All() {
		out = append(out, w.Name)
	}
	return out
}

// ModelSet bundles the processor configurations of the paper.
type ModelSet struct {
	Scalar    *machine.Model // single-issue MIPS R2000 baseline
	NoBoost   *machine.Model // 2-issue superscalar, no speculation hardware
	Squashing *machine.Model // squashing pipeline only (Option 3)
	Boost1    *machine.Model // one shadow register file + store buffer
	MinBoost3 *machine.Model // single shadow file, 3 levels, no store buffer
	Boost7    *machine.Model // full shadow structures, 7 levels
}

// Models returns fresh instances of every evaluated machine model.
func Models() ModelSet {
	return ModelSet{
		Scalar:    machine.Scalar(),
		NoBoost:   machine.NoBoost(),
		Squashing: machine.Squashing(),
		Boost1:    machine.Boost1(),
		MinBoost3: machine.MinBoost3(),
		Boost7:    machine.Boost7(),
	}
}

// Result reports a compiled-and-simulated run.
type Result struct {
	// Engine names the simulator core that produced this run ("fast" or
	// "legacy"); the engines are verified byte-identical, so it only
	// records which core did the work.
	Engine string
	// Compile is the per-pass report of this run's schedule (the
	// memoized artifact build reports separately via
	// Compiled.CompileStats).
	Compile *CompileStats
	// Cycles is the machine cycles consumed on the test input.
	Cycles int64
	// ScalarCycles is the R2000 baseline on the same input.
	ScalarCycles int64
	// Speedup is ScalarCycles/Cycles.
	Speedup float64
	// Insts counts useful instructions issued (including squashed
	// speculative work).
	Insts int64
	// BoostedExec and Squashed count speculative activity.
	BoostedExec int64
	Squashed    int64
	// MemStalls is the total cycles lost to the memory hierarchy; zero
	// unless the run was configured with WithMemHier. BoostedMemStalls
	// is the share incurred by speculative (boosted) accesses, and
	// SquashedMemStalls the share spent stalling on speculative accesses
	// whose work was later squashed — pure loss, the cost the
	// no-boosted-loads ablation isolates.
	MemStalls         int64
	BoostedMemStalls  int64
	SquashedMemStalls int64
	// Mem carries the full hierarchy counters (hit/miss per level, MSHR
	// and write-buffer activity, prefetch accuracy); nil without
	// WithMemHier.
	Mem *MemStats
	// PredictionAccuracy is the static predictor's accuracy on this run.
	PredictionAccuracy float64
	// ObjectGrowth is scheduled size (with recovery code) over original.
	ObjectGrowth float64
	// Out is the program's observable output (verified against the
	// reference interpreter before this Result is returned).
	Out []uint32
}

// CompileAndRun builds the named workload, profiles it on its training
// input, register-allocates (unless InfiniteRegisters), schedules it for
// the model, simulates the test input, verifies the run against the
// reference interpreter, and reports cycle counts and speedup over the
// scalar R2000 baseline.
//
// Deprecated: CompileAndRun rebuilds everything on every call and
// cannot be cancelled. Use Pipeline, which stages Compile/Simulate,
// memoizes shared artifacts and threads a context.Context:
//
//	p := NewPipeline()
//	res, err := p.Run(ctx, workload, model, WithLocalOnly())
func CompileAndRun(workload string, model *machine.Model, opts Options) (*Result, error) {
	return NewPipeline().Run(context.Background(), workload, model, opts.asOpts()...)
}

// DynamicResult reports a run on the dynamically-scheduled machine.
type DynamicResult struct {
	Cycles       int64
	ScalarCycles int64
	Speedup      float64
	Mispredicts  int64
	// MemStalls and Mem report memory-hierarchy activity when the run
	// was configured with WithMemHier (zero/nil otherwise).
	MemStalls int64
	Mem       *MemStats
	Out       []uint32
}

// RunDynamic simulates the workload on the paper's dynamically-scheduled
// superscalar (30 reservation stations, 16-entry reorder buffer, 2048×4
// BTB), with or without register renaming.
//
// Deprecated: use Pipeline.Compile followed by Pipeline.SimulateDynamic,
// which reuse the compiled artifact and accept a context.Context.
func RunDynamic(workload string, renaming bool) (*DynamicResult, error) {
	ctx := context.Background()
	p := NewPipeline()
	c, err := p.Compile(ctx, workload)
	if err != nil {
		return nil, err
	}
	return p.SimulateDynamic(ctx, c, renaming)
}

// ModelByName resolves a machine-model name as used by the CLI tools:
// "R2000"/"scalar", "NoBoost"/"base", "Squashing"/"squash", "Boost1",
// "MinBoost3", "Boost7" (case-insensitive).
func ModelByName(name string) (*machine.Model, error) {
	ms := Models()
	switch strings.ToLower(name) {
	case "r2000", "scalar":
		return ms.Scalar, nil
	case "noboost", "base":
		return ms.NoBoost, nil
	case "squashing", "squash":
		return ms.Squashing, nil
	case "boost1":
		return ms.Boost1, nil
	case "minboost3":
		return ms.MinBoost3, nil
	case "boost7":
		return ms.Boost7, nil
	}
	return nil, fmt.Errorf("boosting: unknown model %q (want R2000, NoBoost, Squashing, Boost1, MinBoost3 or Boost7)", name)
}

// ScheduleListing compiles the workload for the model and returns the
// formatted machine schedule (cycles × issue slots, boosting labels,
// recovery sites) for inspection.
func ScheduleListing(ctx context.Context, workload string, model *machine.Model, opts ...Option) (string, error) {
	p := NewPipeline()
	c, err := p.Compile(ctx, workload, opts...)
	if err != nil {
		return "", err
	}
	cfg := p.base.apply(opts)
	test := c.Program()
	sp, err := core.Schedule(test, model, cfg.core)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, name := range test.Order {
		sb.WriteString(sp.Procs[name].Format())
	}
	return sb.String(), nil
}
