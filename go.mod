module boosting

go 1.22
